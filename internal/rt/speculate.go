package rt

import (
	"sync/atomic"
	"time"

	"indexlaunch/internal/core"
	"indexlaunch/internal/domain"
	"indexlaunch/internal/health"
	"indexlaunch/internal/obs"
)

// Straggler speculation: a point task that runs far past the typical
// execution latency gets a backup launch on a different healthy node. The
// two attempts race; the first to finish commits — completes the future,
// flushes reductions, records the execute span — and the loser's result is
// discarded. Commit is a single compare-and-swap, so exactly one attempt
// ever flushes or completes, which keeps speculation safe for pure tasks
// and buffered reductions (a body that writes regions directly through RW
// accessors must not be speculated: both attempts would write).
//
// The threshold adapts: the runtime watches its own execute-latency
// histogram and speculates once a task exceeds Quantile(q) × Multiplier.
// Until MinSamples executions have been observed there is no baseline and
// nothing is speculated.

// SpeculationPolicy enables and tunes straggler re-launch.
type SpeculationPolicy struct {
	// Quantile is the execute-latency quantile (in (0, 1)) used as the
	// straggler baseline; 0 disables speculation.
	Quantile float64
	// Multiplier scales the baseline into the speculation threshold; 0
	// defaults to health.DefaultSpecMultiplier.
	Multiplier float64
	// MinSamples is the number of completed executions required before the
	// latency baseline is trusted; 0 defaults to 20.
	MinSamples int64
	// MinDelay floors the speculation threshold, so near-zero baselines
	// (trivial warm-up tasks) do not speculate everything; 0 defaults to
	// 1ms.
	MinDelay time.Duration
}

// Enabled reports whether the policy turns speculation on.
func (sp SpeculationPolicy) Enabled() bool { return sp.Quantile > 0 }

func (sp SpeculationPolicy) multiplier() float64 {
	if sp.Multiplier <= 0 {
		return health.DefaultSpecMultiplier
	}
	return sp.Multiplier
}

func (sp SpeculationPolicy) minSamples() int64 {
	if sp.MinSamples <= 0 {
		return 20
	}
	return sp.MinSamples
}

func (sp SpeculationPolicy) minDelay() time.Duration {
	if sp.MinDelay <= 0 {
		return time.Millisecond
	}
	return sp.MinDelay
}

// specState is the shared race state of one speculated point task.
type specState struct {
	committed atomic.Bool
	// cancel closes when an attempt commits, asking the other attempt's
	// body to stop (Context.Cancelled).
	cancel chan struct{}
}

// taskRun bundles everything an execution attempt needs, so the original
// and the backup attempt run the same code path.
type taskRun struct {
	fn     TaskFn
	task   core.TaskID
	name   string
	tag    string
	point  domain.Point
	args   []byte
	prs    []PhysicalRegion
	fut    *Future
	spec   *specState // nil when speculation is off for this task
	spanID int64
	timed  bool
	// tc is the point's span context (the physical span); the execute
	// span and retry/speculate marks are its children. Zero when the job
	// is untraced.
	tc obs.TraceRef
}

// cancelCh returns the attempt-cancellation channel handed to task bodies
// (nil — blocks forever — when the task is not speculated).
func (tr *taskRun) cancelCh() <-chan struct{} {
	if tr.spec == nil {
		return nil
	}
	return tr.spec.cancel
}

// lost reports whether another attempt of this task already committed.
func (tr *taskRun) lost() bool { return tr.spec != nil && tr.spec.committed.Load() }

// specDelay computes the current straggler threshold, or 0 when the
// latency baseline has too few samples to trust.
func (r *Runtime) specDelay() time.Duration {
	sp := r.cfg.Speculate
	h := r.mx.LatExecute
	if h.Count() < sp.minSamples() {
		return 0
	}
	d := time.Duration(float64(h.Quantile(sp.Quantile)) * sp.multiplier())
	if d < sp.minDelay() {
		d = sp.minDelay()
	}
	return d
}

// pickBackupNode selects the node for a backup attempt: the first healthy
// node cyclically after the original. Reports false when no other healthy
// node exists.
func (r *Runtime) pickBackupNode(orig int) (int, bool) {
	r.issueMu.Lock()
	defer r.issueMu.Unlock()
	for k := 1; k < r.cfg.Nodes; k++ {
		n := (orig + k) % r.cfg.Nodes
		if r.dead[n] {
			continue
		}
		if r.hm != nil && r.hm.silenced[n] {
			continue
		}
		return n, true
	}
	return 0, false
}

// armSpeculation starts the straggler watchdog for tr's original attempt
// on node orig. If the task is still running once the threshold elapses, a
// backup attempt launches on another healthy node.
func (r *Runtime) armSpeculation(tr *taskRun, orig int) {
	d := r.specDelay()
	if d <= 0 {
		return
	}
	go func() {
		timer := time.NewTimer(d)
		defer timer.Stop()
		select {
		case <-tr.fut.ev.ch:
			return
		case <-r.stop:
			return
		case <-timer.C:
		}
		if tr.lost() {
			return
		}
		backup, ok := r.pickBackupNode(orig)
		if !ok {
			return
		}
		r.mx.SpecLaunched.Inc()
		if prof := r.cfg.Profile; prof != nil {
			prof.MarkTC(tr.tc.Child(tcSpecBackup), backup, obs.StageSpeculate, tr.name, tr.tag, tr.point, prof.Now())
		}
		r.mx.InflightTasks.Add(1)
		defer r.mx.InflightTasks.Add(-1)
		r.runAttempt(tr, backup, true)
	}()
}

// specLost accounts one attempt whose result was discarded because the
// competing attempt committed first.
func (r *Runtime) specLost(tr *taskRun, node int) {
	r.mx.SpecWasted.Inc()
	if prof := r.cfg.Profile; prof != nil {
		prof.MarkTC(tr.tc.Child(tcSpecLost), node, obs.StageSpeculate, tr.name, tr.tag, tr.point, prof.Now())
	}
}

// runAttempt executes one attempt (original or backup) of tr on node: slot
// acquisition, the retry ladder, and the commit race. Exactly one attempt
// per task reaches commitAttempt's critical section.
func (r *Runtime) runAttempt(tr *taskRun, node int, backup bool) {
	slot := r.slots[node]
	slot <- struct{}{}
	r.mx.BusyProcs.Add(1)
	defer func() {
		r.mx.BusyProcs.Add(-1)
		<-slot
	}()
	if tr.lost() {
		// The other attempt finished while this one queued for a slot.
		r.specLost(tr, node)
		return
	}
	timedExec := tr.timed || r.specOn
	var tExec int64
	if timedExec {
		tExec = r.nowNS()
	}
	var val []byte
	var err error
	attempts := 0
	retry := r.cfg.Retry
	for {
		// A fresh Context per attempt: a failed attempt must not leak
		// buffered reductions or accessor state into its retry.
		ctx := &Context{Point: tr.point, Node: node, Task: tr.task, Args: tr.args,
			regions: tr.prs, cancel: tr.cancelCh()}
		val, err = r.execBody(tr, ctx, node)
		if err == nil {
			attempts++
			r.commitAttempt(tr, ctx, node, backup, val, nil, attempts, tExec, timedExec)
			return
		}
		attempts++
		if attempts > retry.Max {
			break
		}
		if tr.lost() {
			// No point retrying a race already lost.
			r.specLost(tr, node)
			return
		}
		r.mx.Retries.Inc()
		if prof := r.cfg.Profile; prof != nil {
			prof.MarkTC(tr.tc.Child(uint64(tcRetryBase+attempts)), node, obs.StageRetry, tr.name, tr.tag, tr.point, prof.Now())
		}
		if d := retry.backoffFor(attempts); d > 0 {
			if !r.sleepBackoff(d) {
				// Shutdown mid-ladder: give up on the retry and fail the
				// task with its last error now.
				break
			}
		}
	}
	r.commitAttempt(tr, nil, node, backup, val, err, attempts, tExec, timedExec)
}

// commitAttempt is the single point where an attempt's outcome becomes the
// task's outcome: winner-takes-all under speculation, unconditional
// otherwise. Only the winner flushes reductions, records the execute span
// and completes the future.
func (r *Runtime) commitAttempt(tr *taskRun, ctx *Context, node int, backup bool,
	val []byte, err error, attempts int, tExec int64, timedExec bool) {

	if tr.spec != nil {
		if !tr.spec.committed.CompareAndSwap(false, true) {
			r.specLost(tr, node)
			return
		}
		close(tr.spec.cancel)
	}
	if err == nil && ctx != nil && (len(ctx.reducers) > 0 || len(ctx.reducersI64) > 0) {
		r.reduceMu.Lock()
		ctx.flushReductions()
		r.reduceMu.Unlock()
	}
	r.mx.TasksExecuted.Inc()
	if err != nil {
		r.mx.TasksFailed.Inc()
		te := &TaskError{Task: tr.name, Tag: tr.tag, Point: tr.point, Node: node, Attempts: attempts, Err: err}
		if pe, ok := err.(*panicError); ok {
			te.PanicValue, te.Err = pe.value, nil
		}
		err = te
	}
	if timedExec {
		tEnd := r.nowNS()
		if prof := r.cfg.Profile; prof != nil {
			// Record before completing so a fence-then-snapshot sees the
			// span of every task it waited on.
			prof.SpanIDTC(tr.tc.Child(tcExecute), tr.spanID, node, obs.StageExecute, tr.name, tr.tag, tr.point, tExec, tEnd)
		}
		if r.mxOn || r.specOn {
			// Speculation needs the latency baseline even when no metrics
			// registry is attached. Traced tasks leave their trace ID as
			// the bucket's exemplar.
			r.mx.LatExecute.ObserveExemplar(tEnd-tExec, tr.tc.Trace)
		}
	}
	if backup {
		r.mx.SpecWon.Inc()
		if prof := r.cfg.Profile; prof != nil {
			prof.MarkTC(tr.tc.Child(tcSpecWon), node, obs.StageSpeculate, tr.name, tr.tag, tr.point, prof.Now())
		}
	}
	tr.fut.complete(val, err)
}
