// Package rt implements a Legion-like task runtime (paper §5): tasks are
// issued in program order, analyzed for dependencies through a region-tree
// version map, distributed to (simulated) nodes via sharding or slicing
// functors, and executed on per-node worker pools once their precondition
// events have triggered.
//
// The runtime executes real Go task functions against real region data; it
// is the substrate for the examples and the correctness tests. The
// distributed *cost* behaviour of the pipeline (who pays issuance, analysis
// and distribution overhead at scale) is modeled separately in
// internal/sim, which replays the same pipeline against a discrete-event
// cluster model.
package rt

import (
	"context"
	"errors"
	"sync"
)

// Event is a one-shot completion signal. Events order task execution: each
// task carries a set of precondition events and triggers its own completion
// event when it finishes. An event may trigger *poisoned* — carrying the
// error of the task it represents — so that failures propagate along the
// same dependence edges as completions. The zero value is not usable;
// create events with NewEvent or use Completed.
type Event struct {
	ch   chan struct{}
	once sync.Once
	// err is written at most once, inside the trigger's once.Do before ch
	// closes; readers must only load it after observing the close, which
	// gives the necessary happens-before edge.
	err error
}

// NewEvent returns an untriggered event.
func NewEvent() *Event { return &Event{ch: make(chan struct{})} }

// Completed returns a pre-triggered event; tasks with no preconditions
// depend on it.
func Completed() *Event {
	e := NewEvent()
	e.Trigger()
	return e
}

// Trigger fires the event. Triggering is idempotent.
func (e *Event) Trigger() { e.once.Do(func() { close(e.ch) }) }

// Poison fires the event carrying err, marking the work it represents as
// failed. Dependents observe the error through Err, WaitErr or WaitAllErr.
// Poisoning an already-triggered event is a no-op; Poison(nil) is Trigger.
func (e *Event) Poison(err error) {
	e.once.Do(func() {
		e.err = err
		close(e.ch)
	})
}

// Err returns the poison error if the event has triggered poisoned, and nil
// if it triggered cleanly or has not triggered yet.
func (e *Event) Err() error {
	select {
	case <-e.ch:
		return e.err
	default:
		return nil
	}
}

// Done reports whether the event has triggered without blocking.
func (e *Event) Done() bool {
	select {
	case <-e.ch:
		return true
	default:
		return false
	}
}

// Wait blocks until the event triggers.
func (e *Event) Wait() { <-e.ch }

// WaitErr blocks until the event triggers and returns its poison error.
func (e *Event) WaitErr() error {
	<-e.ch
	return e.err
}

// WaitContext blocks until the event triggers or ctx is done, returning the
// poison error or the context's error respectively.
func (e *Event) WaitContext(ctx context.Context) error {
	select {
	case <-e.ch:
		return e.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// WaitAll blocks until every event in evs has triggered.
func WaitAll(evs []*Event) {
	for _, e := range evs {
		e.Wait()
	}
}

// WaitAllErr blocks until every event in evs has triggered and returns the
// joined poison errors, nil if all triggered cleanly.
func WaitAllErr(evs []*Event) error {
	var errs []error
	for _, e := range evs {
		if err := e.WaitErr(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Merge returns an event that triggers once all inputs have triggered. If
// any input triggered poisoned, the merged event is poisoned with the
// joined errors. Merging zero events yields a completed event; merging one
// returns it unchanged.
func Merge(evs ...*Event) *Event {
	switch len(evs) {
	case 0:
		return Completed()
	case 1:
		return evs[0]
	}
	out := NewEvent()
	go func() {
		if err := WaitAllErr(evs); err != nil {
			out.Poison(err)
			return
		}
		out.Trigger()
	}()
	return out
}
