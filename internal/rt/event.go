// Package rt implements a Legion-like task runtime (paper §5): tasks are
// issued in program order, analyzed for dependencies through a region-tree
// version map, distributed to (simulated) nodes via sharding or slicing
// functors, and executed on per-node worker pools once their precondition
// events have triggered.
//
// The runtime executes real Go task functions against real region data; it
// is the substrate for the examples and the correctness tests. The
// distributed *cost* behaviour of the pipeline (who pays issuance, analysis
// and distribution overhead at scale) is modeled separately in
// internal/sim, which replays the same pipeline against a discrete-event
// cluster model.
package rt

import "sync"

// Event is a one-shot completion signal. Events order task execution: each
// task carries a set of precondition events and triggers its own completion
// event when it finishes. The zero value is not usable; create events with
// NewEvent or use Completed.
type Event struct {
	ch   chan struct{}
	once sync.Once
}

// NewEvent returns an untriggered event.
func NewEvent() *Event { return &Event{ch: make(chan struct{})} }

// Completed returns a pre-triggered event; tasks with no preconditions
// depend on it.
func Completed() *Event {
	e := NewEvent()
	e.Trigger()
	return e
}

// Trigger fires the event. Triggering is idempotent.
func (e *Event) Trigger() { e.once.Do(func() { close(e.ch) }) }

// Done reports whether the event has triggered without blocking.
func (e *Event) Done() bool {
	select {
	case <-e.ch:
		return true
	default:
		return false
	}
}

// Wait blocks until the event triggers.
func (e *Event) Wait() { <-e.ch }

// WaitAll blocks until every event in evs has triggered.
func WaitAll(evs []*Event) {
	for _, e := range evs {
		e.Wait()
	}
}

// Merge returns an event that triggers once all inputs have triggered.
// Merging zero events yields a completed event; merging one returns it
// unchanged.
func Merge(evs ...*Event) *Event {
	switch len(evs) {
	case 0:
		return Completed()
	case 1:
		return evs[0]
	}
	out := NewEvent()
	go func() {
		WaitAll(evs)
		out.Trigger()
	}()
	return out
}
