package rt

import (
	"testing"

	"indexlaunch/internal/privilege"
	"indexlaunch/internal/region"
)

// naiveVersionMap is the ablation baseline: a flat list of access records
// scanned linearly per query, standing in for a runtime without the
// interval-tree (bounding-volume-hierarchy) index of §5.
type naiveVersionMap struct {
	recs []naiveRec
}

type naiveRec struct {
	iv     region.Interval
	writes bool
	ev     *Event
}

func (m *naiveVersionMap) access(ivs []region.Interval, priv privilege.Privilege, ev *Event) []*Event {
	var deps []*Event
	for _, iv := range ivs {
		for _, r := range m.recs {
			if !r.iv.Overlaps(iv) {
				continue
			}
			if r.writes || priv.IsWrite() {
				deps = append(deps, r.ev)
			}
		}
	}
	for _, iv := range ivs {
		m.recs = append(m.recs, naiveRec{iv: iv, writes: priv.IsWrite(), ev: ev})
	}
	return deps
}

// accessPattern simulates one timestep of a stencil-like workload: P tasks
// each writing a disjoint block and reading a 3-block halo.
func accessPattern(p int, fn func(ivs []region.Interval, priv privilege.Privilege)) {
	const blockSize = 64
	for t := 0; t < p; t++ {
		lo := int64(t * blockSize)
		fn([]region.Interval{{Lo: lo, Hi: lo + blockSize - 1}}, privilege.Write)
		rLo := lo - blockSize
		if rLo < 0 {
			rLo = 0
		}
		fn([]region.Interval{{Lo: rLo, Hi: lo + 2*blockSize - 1}}, privilege.Read)
	}
}

// BenchmarkAblationVersionMapIntervalTree measures the production version
// map (sorted segments, binary search) on the stencil access pattern.
func BenchmarkAblationVersionMapIntervalTree(b *testing.B) {
	for _, p := range []int{64, 512} {
		b.Run(benchName(p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				vm := newVersionMap(nil, nil)
				for step := 0; step < 4; step++ {
					accessPattern(p, func(ivs []region.Interval, priv privilege.Privilege) {
						vm.access(1, 0, ivs, priv, privilege.OpNone, NewEvent())
					})
				}
			}
		})
	}
}

// BenchmarkAblationVersionMapNaiveScan measures the linear-scan baseline on
// the same pattern; the gap demonstrates why physical analysis needs the
// logarithmic index.
func BenchmarkAblationVersionMapNaiveScan(b *testing.B) {
	for _, p := range []int{64, 512} {
		b.Run(benchName(p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				vm := &naiveVersionMap{}
				for step := 0; step < 4; step++ {
					accessPattern(p, func(ivs []region.Interval, priv privilege.Privilege) {
						vm.access(ivs, priv, NewEvent())
					})
				}
			}
		})
	}
}

func benchName(p int) string {
	if p == 64 {
		return "tasks=64"
	}
	return "tasks=512"
}

// BenchmarkIndexLaunchIssuance measures end-to-end issuance+analysis of an
// index launch versus the equivalent loop of single launches through the
// real runtime (tasks are no-ops), showing the per-task issuance overhead
// the paper's "No IDX" configurations pay.
func BenchmarkIndexLaunchIssuance(b *testing.B) {
	for _, idx := range []bool{true, false} {
		name := "indexlaunch"
		if !idx {
			name = "taskloop"
		}
		b.Run(name, func(b *testing.B) {
			r := MustNew(Config{Nodes: 4, ProcsPerNode: 2, DCR: true, IndexLaunches: idx})
			task := r.MustRegisterTask("noop", func(*Context) ([]byte, error) { return nil, nil })
			launch := benchLaunch(b, r, task)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.ExecuteIndex(launch); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			r.Fence()
		})
	}
}
