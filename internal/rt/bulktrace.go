package rt

import (
	"fmt"

	"indexlaunch/internal/core"
	"indexlaunch/internal/domain"
	"indexlaunch/internal/obs"
	"indexlaunch/internal/privilege"
	"indexlaunch/internal/region"
)

// Bulk tracing implements the paper's stated future work (§6.2.1): "a
// deeper integration with Legion's tracing feature to enable tracing to
// work with bulk task launches, such that the benefits of index launches
// can be enjoyed, even without DCR."
//
// Standard tracing memoizes dependencies at individual-task granularity,
// which forces an index launch to expand before distribution. Bulk tracing
// memoizes at *launch* granularity instead: the capture records, for every
// launch in the trace, which earlier launches it depends on (by merging the
// point-level dependence edges the version map produced); replays wire each
// launch's point tasks to the merged completion events of the depended-on
// launches — one dependence decision per launch, not per task, so the
// compact representation survives replay.
//
// The trade-off is precision: launch-level dependencies over-synchronize
// point tasks that were independent at point granularity (e.g. halo
// exchanges become launch barriers during replay). Correctness is
// unaffected; pipelining across launches shrinks. Enable with
// Config.BulkTracing alongside Tracing.

type launchSig struct {
	task   core.TaskID
	points int
}

type bulkTemplate struct {
	id     uint64
	sigs   []launchSig
	deps   [][]int // intra-trace launch-index dependencies per launch
	writes map[fieldKey][]region.Interval
	reads  map[fieldKey][]region.Interval
}

type bulkState struct {
	mode traceMode
	tmpl *bulkTemplate

	// Capture: map from a point task's completion event to the index of
	// the launch (within the trace) that issued it.
	evLaunch map[*Event]int
	// Pending per-launch dependence accumulation during capture.
	curDeps map[int]struct{}

	// Replay state.
	cursor   int
	done     []*Event // merged completion event per replayed launch
	pointEvs []*Event // accumulates the current launch's point events
	startEv  *Event
}

// beginBulkTrace starts or replays a bulk trace episode.
func (r *Runtime) beginBulkTrace(id uint64) error {
	if tmpl, ok := r.bulkStore[id]; ok {
		var boundary []*Event
		for key, ivs := range tmpl.writes {
			boundary = append(boundary, r.vm.lastEvents(key.tree, key.field, ivs)...)
		}
		for key, ivs := range tmpl.reads {
			boundary = append(boundary, r.vm.lastEvents(key.tree, key.field, ivs)...)
		}
		r.bulk = &bulkState{
			mode:    traceReplaying,
			tmpl:    tmpl,
			done:    make([]*Event, len(tmpl.sigs)),
			startEv: Merge(boundary...),
		}
		return nil
	}
	r.bulk = &bulkState{
		mode: traceCapturing,
		tmpl: &bulkTemplate{
			id:     id,
			writes: map[fieldKey][]region.Interval{},
			reads:  map[fieldKey][]region.Interval{},
		},
		evLaunch: map[*Event]int{},
		curDeps:  map[int]struct{}{},
	}
	return nil
}

// endBulkTrace finishes the current bulk episode.
func (r *Runtime) endBulkTrace(id uint64) error {
	bs := r.bulk
	r.bulk = nil
	switch bs.mode {
	case traceCapturing:
		bs.tmpl.id = id
		if r.bulkStore == nil {
			r.bulkStore = map[uint64]*bulkTemplate{}
		}
		r.bulkStore[id] = bs.tmpl
		r.mx.TraceCaptures.Inc()
		if prof := r.cfg.Profile; prof != nil {
			prof.Mark(0, obs.StageCapture, "bulk-trace", "trace", domain.Point{}, prof.Now())
		}
	case traceReplaying:
		if bs.cursor != len(bs.tmpl.sigs) {
			return fmt.Errorf("rt: bulk trace %d replay issued %d of %d launches",
				id, bs.cursor, len(bs.tmpl.sigs))
		}
		terminal := Merge(bs.done...)
		for key, ivs := range bs.tmpl.writes {
			r.vm.bulkWrite(key.tree, key.field, ivs, terminal)
		}
		for key, ivs := range bs.tmpl.reads {
			r.vm.access(key.tree, key.field, ivs, privilege.Read, privilege.OpNone, terminal)
		}
		r.outstanding = append(r.outstanding, pendingTask{ev: terminal, name: "bulk-trace-replay", tag: "trace"})
		r.mx.TraceReplays.Inc()
		if prof := r.cfg.Profile; prof != nil {
			prof.Mark(0, obs.StageReplay, "bulk-trace", "trace", domain.Point{}, prof.Now())
		}
	}
	return nil
}

// bulkCaptureDep records one point-level dependence edge during capture,
// coarsened to launch granularity. Edges to events issued outside the trace
// carry no information worth keeping: pre-episode ordering is reconstructed
// at replay time from the version map (startEv), never from the capture run.
func (bs *bulkState) captureDep(dep *Event) {
	if idx, ok := bs.evLaunch[dep]; ok {
		bs.curDeps[idx] = struct{}{}
	}
}

// bulkCapturePoint records one issued point task's regions and event.
func (bs *bulkState) capturePoint(ev *Event, prs []PhysicalRegion) {
	bs.evLaunch[ev] = len(bs.tmpl.sigs) // index of the launch being captured
	for _, pr := range prs {
		ivs := pr.Region.Intervals()
		for _, f := range pr.Fields {
			key := fieldKey{tree: pr.Region.Tree.ID, field: f}
			if pr.Priv.IsWrite() {
				bs.tmpl.writes[key] = append(bs.tmpl.writes[key], ivs...)
			} else {
				bs.tmpl.reads[key] = append(bs.tmpl.reads[key], ivs...)
			}
		}
	}
}

// captureLaunchDone seals the per-launch dependence record during capture.
func (bs *bulkState) captureLaunchDone(task core.TaskID, points int) {
	deps := make([]int, 0, len(bs.curDeps))
	for d := range bs.curDeps {
		deps = append(deps, d)
	}
	bs.tmpl.sigs = append(bs.tmpl.sigs, launchSig{task: task, points: points})
	bs.tmpl.deps = append(bs.tmpl.deps, deps)
	bs.curDeps = map[int]struct{}{}
}

// replayLaunchDeps returns the shared precondition events for every point
// task of the next replayed launch.
func (bs *bulkState) replayLaunchDeps(task core.TaskID, points int) []*Event {
	if bs.cursor >= len(bs.tmpl.sigs) {
		panic(fmt.Sprintf("rt: bulk trace %d replay issued more launches than captured (%d)",
			bs.tmpl.id, len(bs.tmpl.sigs)))
	}
	sig := bs.tmpl.sigs[bs.cursor]
	if sig.task != task || sig.points != points {
		panic(fmt.Sprintf("rt: bulk trace %d replay diverged at launch %d: captured task %d/%d pts, replayed task %d/%d pts",
			bs.tmpl.id, bs.cursor, sig.task, sig.points, task, points))
	}
	// Every replayed launch waits on the episode boundary in addition to
	// its intra-trace deps. A capture-time "had external deps" flag cannot
	// stand in for this: a launch that read *fresh* data during capture
	// (no prior tasks, so no edges) is indistinguishable from one that is
	// genuinely independent, yet at replay time the same read races with
	// whatever wrote the region since — typically the previous episode.
	// Launches with intra-trace deps reach startEv transitively, so this
	// costs nothing beyond the chain roots that truly need it.
	deps := []*Event{bs.startEv}
	for _, j := range bs.tmpl.deps[bs.cursor] {
		deps = append(deps, bs.done[j])
	}
	return deps
}

// replayLaunchDone seals the merged completion event of the just-replayed
// launch. The input slice is copied: callers reuse its backing array for
// the next launch, while the merge goroutine reads it asynchronously.
func (bs *bulkState) replayLaunchDone(pointEvents []*Event) {
	evs := append([]*Event(nil), pointEvents...)
	bs.done[bs.cursor] = Merge(evs...)
	bs.cursor++
}
