package rt

import (
	"testing"

	"indexlaunch/internal/core"
	"indexlaunch/internal/domain"
	"indexlaunch/internal/privilege"
	"indexlaunch/internal/projection"
	"indexlaunch/internal/region"
)

// benchLaunch builds a 64-point read-only index launch over a fresh
// collection for issuance benchmarks.
func benchLaunch(tb testing.TB, r *Runtime, task core.TaskID) *core.IndexLaunch {
	tb.Helper()
	fs := region.MustFieldSpace(region.Field{ID: 0, Name: "v", Kind: region.F64})
	tree := region.MustNewTree("bench", domain.Range1(0, 63), fs)
	part, err := tree.PartitionEqual(tree.Root(), "blocks", 64)
	if err != nil {
		tb.Fatal(err)
	}
	return core.MustForall("bench", task, domain.Range1(0, 63), core.Requirement{
		Partition: part, Functor: projection.Identity(1),
		Priv: privilege.Read, Fields: []region.FieldID{0},
	})
}
