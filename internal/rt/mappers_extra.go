package rt

import (
	"sync"

	"indexlaunch/internal/core"
	"indexlaunch/internal/domain"
)

// CyclicMapper distributes launch points round-robin across nodes — the
// classic cyclic distribution, useful when consecutive points have
// imbalanced work.
type CyclicMapper struct{}

// ShardPoint implements Mapper: point rank i goes to node i mod nodes.
func (CyclicMapper) ShardPoint(d domain.Domain, p domain.Point, nodes int) int {
	return int(rankOf(d, p) % int64(nodes))
}

// Slice implements Mapper: one slice per node holding its cyclic points.
func (CyclicMapper) Slice(d domain.Domain, nodes int) []Slice {
	buckets := make([][]domain.Point, nodes)
	i := int64(0)
	d.Each(func(p domain.Point) bool {
		n := int(i % int64(nodes))
		buckets[n] = append(buckets[n], p)
		i++
		return true
	})
	out := make([]Slice, 0, nodes)
	for n, pts := range buckets {
		if len(pts) > 0 {
			out = append(out, Slice{Domain: domain.FromPoints(pts), Node: n})
		}
	}
	return out
}

// SelectProcessor implements Mapper with round-robin by rank.
func (CyclicMapper) SelectProcessor(node int, task core.TaskID, p domain.Point, procs int) int {
	if procs <= 1 {
		return 0
	}
	return int(uint64(p.X()+p.Y()+p.Z()) % uint64(procs))
}

// MemoizingMapper caches sharding-functor evaluations. Sharding functors
// are pure (paper §5: "sharding functors are pure functions, which permit
// this mapping to be memoized for efficiency"), so the cache is always
// valid; Hits/Misses expose its effectiveness.
type MemoizingMapper struct {
	Inner Mapper

	mu     sync.Mutex
	cache  map[shardKey]int
	hits   int64
	misses int64
}

type shardKey struct {
	bounds domain.Rect
	volume int64
	point  domain.Point
	nodes  int
}

// NewMemoizingMapper wraps inner with a sharding cache.
func NewMemoizingMapper(inner Mapper) *MemoizingMapper {
	return &MemoizingMapper{Inner: inner, cache: map[shardKey]int{}}
}

// ShardPoint implements Mapper, consulting the cache first.
func (m *MemoizingMapper) ShardPoint(d domain.Domain, p domain.Point, nodes int) int {
	key := shardKey{bounds: d.Bounds(), volume: d.Volume(), point: p, nodes: nodes}
	m.mu.Lock()
	if n, ok := m.cache[key]; ok {
		m.hits++
		m.mu.Unlock()
		return n
	}
	m.misses++
	m.mu.Unlock()
	n := m.Inner.ShardPoint(d, p, nodes)
	m.mu.Lock()
	m.cache[key] = n
	m.mu.Unlock()
	return n
}

// Slice implements Mapper by delegation (slicing is already per-launch).
func (m *MemoizingMapper) Slice(d domain.Domain, nodes int) []Slice {
	return m.Inner.Slice(d, nodes)
}

// SelectProcessor implements Mapper by delegation.
func (m *MemoizingMapper) SelectProcessor(node int, task core.TaskID, p domain.Point, procs int) int {
	return m.Inner.SelectProcessor(node, task, p, procs)
}

// Stats returns cache hits and misses.
func (m *MemoizingMapper) Stats() (hits, misses int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hits, m.misses
}

// PinnedMapper places every task on one node; useful in tests and for
// reproducing centralized bottlenecks.
type PinnedMapper struct{ Node int }

// ShardPoint implements Mapper.
func (m PinnedMapper) ShardPoint(domain.Domain, domain.Point, int) int { return m.Node }

// Slice implements Mapper with a single slice.
func (m PinnedMapper) Slice(d domain.Domain, nodes int) []Slice {
	return []Slice{{Domain: d, Node: m.Node}}
}

// SelectProcessor implements Mapper.
func (m PinnedMapper) SelectProcessor(int, core.TaskID, domain.Point, int) int { return 0 }
