package rt

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"indexlaunch/internal/core"
	"indexlaunch/internal/domain"
	"indexlaunch/internal/privilege"
	"indexlaunch/internal/projection"
	"indexlaunch/internal/region"
)

// The stress test generates random programs — sequences of index launches
// with randomly chosen privileges, functors and partitions over one shared
// collection — executes them on the concurrent runtime, and compares the
// final data against a deterministic sequential model. Any missed
// dependence edge shows up as a divergence.

type stressOp struct {
	priv  privilege.Privilege
	shift int64 // functor: identity shifted by this amount mod blocks
	scale float64
	domLo int64
	domHi int64
}

func randomOps(rng *rand.Rand, n int, blocks int64) []stressOp {
	ops := make([]stressOp, n)
	for i := range ops {
		privs := []privilege.Privilege{privilege.Read, privilege.Write, privilege.ReadWrite, privilege.Reduce}
		lo := rng.Int63n(blocks)
		hi := lo + rng.Int63n(blocks-lo)
		ops[i] = stressOp{
			priv:  privs[rng.Intn(len(privs))],
			shift: rng.Int63n(blocks),
			scale: float64(1 + rng.Intn(5)),
			domLo: lo,
			domHi: hi,
		}
	}
	return ops
}

// applySequential executes the op's semantics directly: for each launch
// point p in order, the task touches block (p+shift) mod blocks.
func applySequential(data []float64, blockSize int64, op stressOp, blocks int64) {
	for p := op.domLo; p <= op.domHi; p++ {
		b := (p + op.shift) % blocks
		for e := b * blockSize; e < (b+1)*blockSize; e++ {
			switch op.priv {
			case privilege.Read:
				// no effect
			case privilege.Write:
				data[e] = op.scale
			case privilege.ReadWrite:
				data[e] = data[e]*op.scale + 1
			case privilege.Reduce:
				data[e] += op.scale
			}
		}
	}
}

func TestStressRandomProgramsMatchSequentialModel(t *testing.T) {
	const (
		blocks    = 8
		blockSize = 4
		elements  = blocks * blockSize
		opsPerRun = 30
	)
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			ops := randomOps(rng, opsPerRun, blocks)

			// Sequential model.
			model := make([]float64, elements)

			// Concurrent runtime execution.
			r := MustNew(Config{Nodes: 3, ProcsPerNode: 2, DCR: seed%2 == 0, IndexLaunches: true})
			fs := region.MustFieldSpace(region.Field{ID: 0, Name: "v", Kind: region.F64})
			tree := region.MustNewTree("stress", domain.Range1(0, elements-1), fs)
			part, err := tree.PartitionEqual(tree.Root(), "blocks", blocks)
			if err != nil {
				t.Fatal(err)
			}

			task := r.MustRegisterTask("op", func(ctx *Context) ([]byte, error) {
				scale := float64(ctx.Args[0])
				pr, _ := ctx.Region(0)
				switch pr.Priv {
				case privilege.Read:
					acc, err := ctx.ReadF64(0, 0)
					if err != nil {
						return nil, err
					}
					var s float64
					pr.Region.Domain.Each(func(p domain.Point) bool {
						s += acc.Get(p)
						return true
					})
					return EncodeF64(s), nil
				case privilege.Write:
					acc, err := ctx.WriteF64(0, 0)
					if err != nil {
						return nil, err
					}
					pr.Region.Domain.Each(func(p domain.Point) bool {
						acc.Set(p, scale)
						return true
					})
				case privilege.ReadWrite:
					acc, err := ctx.WriteF64(0, 0)
					if err != nil {
						return nil, err
					}
					in, err := ctx.ReadF64(0, 0)
					if err != nil {
						return nil, err
					}
					pr.Region.Domain.Each(func(p domain.Point) bool {
						acc.Set(p, in.Get(p)*scale+1)
						return true
					})
				case privilege.Reduce:
					red, err := ctx.ReduceF64(0, 0)
					if err != nil {
						return nil, err
					}
					pr.Region.Domain.Each(func(p domain.Point) bool {
						red.Fold(p, scale)
						return true
					})
				}
				return nil, nil
			})

			var fms []*FutureMap
			for _, op := range ops {
				applySequential(model, blockSize, op, blocks)

				req := core.Requirement{
					Partition: part,
					Functor:   projection.Modular1D(1, op.shift, blocks),
					Priv:      op.priv,
					Fields:    []region.FieldID{0},
				}
				if op.priv == privilege.Reduce {
					req.RedOp = privilege.OpSumF64
				}
				launch := core.MustForall("op", task, domain.Range1(op.domLo, op.domHi), req)
				launch.Args = []byte{byte(op.scale)}
				fm, err := r.ExecuteIndex(launch)
				if err != nil {
					t.Fatal(err)
				}
				fms = append(fms, fm)
			}
			r.Fence()
			for _, fm := range fms {
				if err := fm.Wait(); err != nil {
					t.Fatal(err)
				}
			}

			acc := region.MustFieldF64(tree.Root(), 0)
			for e := int64(0); e < elements; e++ {
				got := acc.Get(domain.Pt1(e))
				if got != model[e] {
					t.Fatalf("element %d = %v, sequential model says %v (missed dependence?)",
						e, got, model[e])
				}
			}
		})
	}
}

// TestStressFaultMatrixMatchesSequentialModel runs the random-program
// harness under the full fault matrix — node-failure injection × {DCR,
// centralized} × {IndexLaunches on, off} × retries — with every third
// (op, point) pair failing transiently on its first attempt (half of those
// by panicking). Retries must recover every transient, re-mapping must
// absorb the node kill, and the final region contents must match the
// fault-free sequential model exactly. Run with -race.
func TestStressFaultMatrixMatchesSequentialModel(t *testing.T) {
	const (
		blocks    = 8
		blockSize = 4
		elements  = blocks * blockSize
		opsPerRun = 24
	)
	for _, dcr := range []bool{false, true} {
		for _, idx := range []bool{false, true} {
			name := fmt.Sprintf("dcr=%v/idx=%v", dcr, idx)
			t.Run(name, func(t *testing.T) {
				runStressWithFaults(t, Config{
					Nodes: 4, ProcsPerNode: 2, DCR: dcr, IndexLaunches: idx,
					Retry: RetryPolicy{Max: 2},
					Fault: NewFaultInjector(11).KillRandomNode(4, 40),
				}, blocks, blockSize, elements, opsPerRun, 3)
			})
		}
	}
}

// TestStressFaultCountersDeterministic repeats one faulty configuration and
// checks the fault counters in Stats are identical across runs: same seed +
// same Config ⇒ same Panics, Retries, NodeFailures, Remapped.
func TestStressFaultCountersDeterministic(t *testing.T) {
	const (
		blocks    = 8
		blockSize = 4
		elements  = blocks * blockSize
		opsPerRun = 24
	)
	var prev *Stats
	for run := 0; run < 3; run++ {
		st := runStressWithFaults(t, Config{
			Nodes: 4, ProcsPerNode: 2, DCR: true, IndexLaunches: true,
			Retry: RetryPolicy{Max: 2},
			Fault: NewFaultInjector(11).KillRandomNode(4, 40),
		}, blocks, blockSize, elements, opsPerRun, 3)
		if prev != nil {
			if st.Panics != prev.Panics || st.Retries != prev.Retries ||
				st.TasksFailed != prev.TasksFailed || st.TasksSkipped != prev.TasksSkipped ||
				st.NodeFailures != prev.NodeFailures || st.Remapped != prev.Remapped {
				t.Fatalf("run %d fault counters diverged:\n%+v\n%+v", run, st, *prev)
			}
		}
		prev = &st
	}
	if prev.Retries == 0 || prev.NodeFailures != 1 || prev.Remapped == 0 || prev.Panics == 0 {
		t.Errorf("fault machinery unexercised: %+v", *prev)
	}
}

// runStressWithFaults executes one random program under cfg with transient
// first-attempt failures injected into every third (op, point) pair, checks
// the final contents against the sequential model, and returns the stats.
func runStressWithFaults(t *testing.T, cfg Config, blocks, blockSize, elements int64, opsPerRun, progSeed int) Stats {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(progSeed)))
	ops := randomOps(rng, opsPerRun, blocks)

	model := make([]float64, elements)

	r := MustNew(cfg)
	fs := region.MustFieldSpace(region.Field{ID: 0, Name: "v", Kind: region.F64})
	tree := region.MustNewTree("stress", domain.Range1(0, elements-1), fs)
	part, err := tree.PartitionEqual(tree.Root(), "blocks", int(blocks))
	if err != nil {
		t.Fatal(err)
	}

	// Transient-fault schedule: (op, point) pairs with (op+point)%3 == 0
	// fail on their first attempt — by panic when the sum is even, by error
	// otherwise. The failure fires before any region access, so a retried
	// attempt always sees clean state.
	var mu sync.Mutex
	attempts := map[[2]int64]int{}
	firstAttemptFails := func(op, point int64) (fail, viaPanic bool) {
		mu.Lock()
		attempts[[2]int64{op, point}]++
		first := attempts[[2]int64{op, point}] == 1
		mu.Unlock()
		s := op + point
		return first && s%3 == 0, s%2 == 0
	}

	task := r.MustRegisterTask("op", func(ctx *Context) ([]byte, error) {
		opIdx := int64(ctx.Args[1])
		if fail, viaPanic := firstAttemptFails(opIdx, ctx.Point.X()); fail {
			if viaPanic {
				panic(fmt.Sprintf("injected panic at op %d point %v", opIdx, ctx.Point))
			}
			return nil, fmt.Errorf("injected fault at op %d point %v", opIdx, ctx.Point)
		}
		scale := float64(ctx.Args[0])
		pr, _ := ctx.Region(0)
		switch pr.Priv {
		case privilege.Write:
			acc, err := ctx.WriteF64(0, 0)
			if err != nil {
				return nil, err
			}
			pr.Region.Domain.Each(func(p domain.Point) bool {
				acc.Set(p, scale)
				return true
			})
		case privilege.ReadWrite:
			acc, err := ctx.WriteF64(0, 0)
			if err != nil {
				return nil, err
			}
			in, err := ctx.ReadF64(0, 0)
			if err != nil {
				return nil, err
			}
			pr.Region.Domain.Each(func(p domain.Point) bool {
				acc.Set(p, in.Get(p)*scale+1)
				return true
			})
		case privilege.Reduce:
			red, err := ctx.ReduceF64(0, 0)
			if err != nil {
				return nil, err
			}
			pr.Region.Domain.Each(func(p domain.Point) bool {
				red.Fold(p, scale)
				return true
			})
		}
		return nil, nil
	})

	for i, op := range ops {
		applySequential(model, blockSize, op, blocks)
		req := core.Requirement{
			Partition: part,
			Functor:   projection.Modular1D(1, op.shift, blocks),
			Priv:      op.priv,
			Fields:    []region.FieldID{0},
		}
		if op.priv == privilege.Reduce {
			req.RedOp = privilege.OpSumF64
		}
		launch := core.MustForall("op", task, domain.Range1(op.domLo, op.domHi), req)
		launch.Args = []byte{byte(op.scale), byte(i)}
		if _, err := r.ExecuteIndex(launch); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.FenceErr(); err != nil {
		t.Fatalf("faulty run did not recover: %v", err)
	}

	acc := region.MustFieldF64(tree.Root(), 0)
	for e := int64(0); e < elements; e++ {
		got := acc.Get(domain.Pt1(e))
		if got != model[e] {
			t.Fatalf("element %d = %v, sequential model says %v (fault recovery diverged)",
				e, got, model[e])
		}
	}
	return r.Stats()
}

// TestStressOverlappingWritersSerializeDeterministically issues the same
// conflicting-writer program twice and checks the results agree: the
// version map must impose program order on conflicts regardless of
// scheduling.
func TestStressOverlappingWritersSerializeDeterministically(t *testing.T) {
	run := func() float64 {
		r := MustNew(Config{Nodes: 4, ProcsPerNode: 4, DCR: true, IndexLaunches: true})
		fs := region.MustFieldSpace(region.Field{ID: 0, Name: "v", Kind: region.F64})
		tree := region.MustNewTree("d", domain.Range1(0, 31), fs)
		part, _ := tree.PartitionEqual(tree.Root(), "b", 4)
		task := r.MustRegisterTask("chain", func(ctx *Context) ([]byte, error) {
			acc, err := ctx.WriteF64(0, 0)
			if err != nil {
				return nil, err
			}
			in, err := ctx.ReadF64(0, 0)
			if err != nil {
				return nil, err
			}
			pr, _ := ctx.Region(0)
			pr.Region.Domain.Each(func(p domain.Point) bool {
				acc.Set(p, in.Get(p)*2+float64(ctx.Point.X()))
				return true
			})
			return nil, nil
		})
		// 16 launches, every one touching all 4 blocks via (i+k)%4 over a
		// 4-point domain — every pair of consecutive launches conflicts.
		for k := int64(0); k < 16; k++ {
			launch := core.MustForall("chain", task, domain.Range1(0, 3), core.Requirement{
				Partition: part, Functor: projection.Modular1D(1, k, 4),
				Priv: privilege.ReadWrite, Fields: []region.FieldID{0},
			})
			if _, err := r.ExecuteIndex(launch); err != nil {
				t.Fatal(err)
			}
		}
		r.Fence()
		sum, _ := region.SumF64(tree.Root(), 0)
		return sum
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("two identical runs diverged: %v vs %v", a, b)
	}
}
