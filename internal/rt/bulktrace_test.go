package rt

import (
	"testing"

	"indexlaunch/internal/core"
	"indexlaunch/internal/domain"
	"indexlaunch/internal/privilege"
	"indexlaunch/internal/projection"
	"indexlaunch/internal/region"
)

func bulkRuntime(t *testing.T) (*Runtime, *region.Tree, *core.IndexLaunch) {
	t.Helper()
	r := MustNew(Config{
		Nodes: 2, ProcsPerNode: 2, DCR: true, IndexLaunches: true,
		Tracing: true, BulkTracing: true,
	})
	tree, p := lineSetup(t, 40, 4)
	inc := r.MustRegisterTask("inc", incrementTask)
	launch := core.MustForall("inc", inc, domain.Range1(0, 3), core.Requirement{
		Partition: p, Functor: projection.Identity(1),
		Priv: privilege.ReadWrite, Fields: []region.FieldID{fieldVal},
	})
	return r, tree, launch
}

func TestBulkTraceCaptureThenReplay(t *testing.T) {
	r, tree, launch := bulkRuntime(t)
	const iters = 5
	for i := 0; i < iters; i++ {
		if err := r.BeginTrace(1); err != nil {
			t.Fatal(err)
		}
		if _, err := r.ExecuteIndex(launch); err != nil {
			t.Fatal(err)
		}
		if err := r.EndTrace(1); err != nil {
			t.Fatal(err)
		}
	}
	r.Fence()
	sum, _ := region.SumF64(tree.Root(), fieldVal)
	if sum != 40*iters {
		t.Errorf("sum = %v, want %d", sum, 40*iters)
	}
	st := r.Stats()
	if st.TraceCaptures != 1 || st.TraceReplays != iters-1 {
		t.Errorf("captures=%d replays=%d", st.TraceCaptures, st.TraceReplays)
	}
	if st.AnalysisSkipped != int64(4*(iters-1)) {
		t.Errorf("analysis skipped = %d, want %d", st.AnalysisSkipped, 4*(iters-1))
	}
}

func TestBulkTraceMultiLaunchBody(t *testing.T) {
	// A two-launch body with a cross-launch dependency (producer-consumer)
	// must replay correctly: the consumer launch is wired to the merged
	// completion of the producer launch.
	r := MustNew(Config{
		Nodes: 2, ProcsPerNode: 4, DCR: true, IndexLaunches: true,
		Tracing: true, BulkTracing: true,
	})
	src, srcPart := lineSetup(t, 40, 4)
	dst, dstPart := lineSetup(t, 40, 4)
	_ = src

	produce := r.MustRegisterTask("produce", func(ctx *Context) ([]byte, error) {
		acc, err := ctx.WriteF64(0, fieldVal)
		if err != nil {
			return nil, err
		}
		in, err := ctx.ReadF64(0, fieldVal)
		if err != nil {
			return nil, err
		}
		pr, _ := ctx.Region(0)
		pr.Region.Domain.Each(func(p domain.Point) bool {
			acc.Set(p, in.Get(p)+1)
			return true
		})
		return nil, nil
	})
	consume := r.MustRegisterTask("consume", func(ctx *Context) ([]byte, error) {
		in, err := ctx.ReadF64(0, fieldVal)
		if err != nil {
			return nil, err
		}
		out, err := ctx.WriteF64(1, fieldVal)
		if err != nil {
			return nil, err
		}
		pr, _ := ctx.Region(0)
		pr.Region.Domain.Each(func(p domain.Point) bool {
			out.Set(p, in.Get(p)*10)
			return true
		})
		return nil, nil
	})

	d := domain.Range1(0, 3)
	lp := core.MustForall("produce", produce, d, core.Requirement{
		Partition: srcPart, Functor: projection.Identity(1),
		Priv: privilege.ReadWrite, Fields: []region.FieldID{fieldVal},
	})
	lc := core.MustForall("consume", consume, d,
		core.Requirement{Partition: srcPart, Functor: projection.Identity(1),
			Priv: privilege.Read, Fields: []region.FieldID{fieldVal}},
		core.Requirement{Partition: dstPart, Functor: projection.Identity(1),
			Priv: privilege.Write, Fields: []region.FieldID{fieldVal}},
	)

	const iters = 4
	for i := 0; i < iters; i++ {
		if err := r.BeginTrace(2); err != nil {
			t.Fatal(err)
		}
		if _, err := r.ExecuteIndex(lp); err != nil {
			t.Fatal(err)
		}
		if _, err := r.ExecuteIndex(lc); err != nil {
			t.Fatal(err)
		}
		if err := r.EndTrace(2); err != nil {
			t.Fatal(err)
		}
	}
	r.Fence()
	// After iteration k, src holds k and dst holds 10k everywhere.
	sum, _ := region.SumF64(dst.Root(), fieldVal)
	if sum != 40*10*iters {
		t.Errorf("dst sum = %v, want %d", sum, 40*10*iters)
	}
}

func TestBulkTraceOrdersAgainstOutsideWork(t *testing.T) {
	r, tree, launch := bulkRuntime(t)
	for i := 0; i < 2; i++ {
		if err := r.BeginTrace(3); err != nil {
			t.Fatal(err)
		}
		if _, err := r.ExecuteIndex(launch); err != nil {
			t.Fatal(err)
		}
		if err := r.EndTrace(3); err != nil {
			t.Fatal(err)
		}
		// Un-traced work between episodes.
		if _, err := r.ExecuteIndex(launch); err != nil {
			t.Fatal(err)
		}
	}
	r.Fence()
	sum, _ := region.SumF64(tree.Root(), fieldVal)
	if sum != 40*4 {
		t.Errorf("sum = %v, want 160", sum)
	}
}

func TestBulkTraceDivergencePanics(t *testing.T) {
	r, _, launch := bulkRuntime(t)
	if err := r.BeginTrace(4); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ExecuteIndex(launch); err != nil {
		t.Fatal(err)
	}
	if err := r.EndTrace(4); err != nil {
		t.Fatal(err)
	}
	if err := r.BeginTrace(4); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("divergent bulk replay should panic")
		}
	}()
	// Different parallelism than captured.
	_, p := lineSetup(t, 40, 4)
	smaller := core.MustForall("inc", launch.Task, domain.Range1(0, 1), core.Requirement{
		Partition: p, Functor: projection.Identity(1),
		Priv: privilege.ReadWrite, Fields: []region.FieldID{fieldVal},
	})
	_, _ = r.ExecuteIndex(smaller)
}

func TestBulkTraceIncompleteReplayErrors(t *testing.T) {
	r, _, launch := bulkRuntime(t)
	if err := r.BeginTrace(5); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ExecuteIndex(launch); err != nil {
		t.Fatal(err)
	}
	if err := r.EndTrace(5); err != nil {
		t.Fatal(err)
	}
	if err := r.BeginTrace(5); err != nil {
		t.Fatal(err)
	}
	if err := r.EndTrace(5); err == nil {
		t.Error("incomplete bulk replay should error")
	}
	r.Fence()
}

func TestBulkTraceWithSingles(t *testing.T) {
	r := MustNew(Config{
		Nodes: 1, ProcsPerNode: 1, DCR: true, IndexLaunches: true,
		Tracing: true, BulkTracing: true,
	})
	tree, _ := lineSetup(t, 10, 1)
	inc := r.MustRegisterTask("inc1", incrementTask)
	req := []SingleReq{{Region: tree.Root(), Priv: privilege.ReadWrite, Fields: []region.FieldID{fieldVal}}}
	for i := 0; i < 3; i++ {
		if err := r.BeginTrace(6); err != nil {
			t.Fatal(err)
		}
		if _, err := r.ExecuteSingle("inc1", inc, req, nil); err != nil {
			t.Fatal(err)
		}
		if err := r.EndTrace(6); err != nil {
			t.Fatal(err)
		}
	}
	r.Fence()
	sum, _ := region.SumF64(tree.Root(), fieldVal)
	if sum != 30 {
		t.Errorf("sum = %v, want 30", sum)
	}
}
