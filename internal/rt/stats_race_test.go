package rt

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

// TestStatsConcurrentSnapshots hammers Runtime.Stats from a reader
// goroutine while a launch storm issues work, and checks every counter in
// successive snapshots is monotonically non-decreasing — a torn or
// non-atomic read would show a counter going backwards (and the race
// detector would flag the access).
func TestStatsConcurrentSnapshots(t *testing.T) {
	r := MustNew(Config{Nodes: 4, ProcsPerNode: 2, DCR: true, IndexLaunches: true})
	task := r.MustRegisterTask("noop", func(*Context) ([]byte, error) { return nil, nil })
	launch := benchLaunch(t, r, task)

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		prev := r.Stats()
		for !stop.Load() {
			cur := r.Stats()
			pv, cv := reflect.ValueOf(prev), reflect.ValueOf(cur)
			for i := 0; i < cv.NumField(); i++ {
				if cv.Field(i).Int() < pv.Field(i).Int() {
					t.Errorf("counter %s went backwards: %d -> %d",
						cv.Type().Field(i).Name, pv.Field(i).Int(), cv.Field(i).Int())
					return
				}
			}
			prev = cur
		}
	}()

	const storms = 50
	for i := 0; i < storms; i++ {
		if _, err := r.ExecuteIndex(launch); err != nil {
			t.Fatal(err)
		}
		if i%10 == 9 {
			r.Fence()
		}
	}
	r.Fence()
	stop.Store(true)
	wg.Wait()

	final := r.Stats()
	if final.LaunchCalls != storms {
		t.Fatalf("LaunchCalls = %d, want %d", final.LaunchCalls, storms)
	}
	if final.TasksExecuted != storms*64 {
		t.Fatalf("TasksExecuted = %d, want %d", final.TasksExecuted, storms*64)
	}
}
