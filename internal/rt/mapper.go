package rt

import (
	"indexlaunch/internal/core"
	"indexlaunch/internal/domain"
)

// Mapper controls all distribution decisions the runtime makes (paper §5:
// "distribution in Legion is entirely under the control of the end user").
// In DCR mode the runtime consults ShardPoint (the sharding functor); in
// centralized mode it consults Slice (the slicing functor).
type Mapper interface {
	// ShardPoint is the sharding functor: it returns the node that owns
	// launch point p of a launch over domain d, for a machine of nodes
	// nodes. It must be a pure function — every replicated shard evaluates
	// it independently and the results must agree.
	ShardPoint(d domain.Domain, p domain.Point, nodes int) int

	// Slice is the slicing functor: it decomposes a launch domain into
	// slices assigned to nodes. Slicing may be recursive in Legion; here a
	// single-level decomposition is produced and the broadcast tree over
	// slices is handled by the distribution stage.
	Slice(d domain.Domain, nodes int) []Slice

	// SelectProcessor picks the processor index within a node for a task.
	SelectProcessor(node int, task core.TaskID, p domain.Point, procs int) int
}

// Slice names a sub-domain of an index launch assigned to one node.
type Slice struct {
	Domain domain.Domain
	Node   int
}

// BlockMapper is the default mapper: contiguous blocks of the launch domain
// are assigned to consecutive nodes, and point tasks round-robin across a
// node's processors. Its sharding and slicing functors agree with each
// other, so DCR and non-DCR runs place tasks identically.
type BlockMapper struct{}

// ShardPoint implements Mapper with a block distribution: point i of |D|
// goes to node floor(i·nodes/|D|).
func (BlockMapper) ShardPoint(d domain.Domain, p domain.Point, nodes int) int {
	vol := d.Volume()
	if vol == 0 {
		return 0
	}
	// Rank of p within the domain. Dense domains use row-major rank; sparse
	// domains use sorted rank. Cost is O(log |D|) for sparse, O(1) dense.
	rank := rankOf(d, p)
	return int(rank * int64(nodes) / vol)
}

// Slice implements Mapper by splitting the domain into one near-equal block
// per node, skipping empty blocks.
func (BlockMapper) Slice(d domain.Domain, nodes int) []Slice {
	chunks := d.Split(nodes)
	out := make([]Slice, 0, len(chunks))
	for n, c := range chunks {
		if !c.Empty() {
			out = append(out, Slice{Domain: c, Node: n})
		}
	}
	return out
}

// SelectProcessor implements Mapper with a round-robin by point rank.
func (BlockMapper) SelectProcessor(node int, task core.TaskID, p domain.Point, procs int) int {
	if procs <= 1 {
		return 0
	}
	h := uint64(p.X())*2654435761 + uint64(p.Y())*40503 + uint64(p.Z())*97
	return int(h % uint64(procs))
}

func rankOf(d domain.Domain, p domain.Point) int64 {
	if !d.Sparse() {
		return d.Bounds().Index(p)
	}
	lo, hi := int64(0), d.Volume()-1
	for lo <= hi {
		mid := (lo + hi) / 2
		q := d.PointAt(mid)
		switch {
		case q.Eq(p):
			return mid
		case q.Less(p):
			lo = mid + 1
		default:
			hi = mid - 1
		}
	}
	return 0 // point not in domain; callers validate beforehand
}
