package rt

import (
	"sort"
	"sync"

	"indexlaunch/internal/metrics"
	"indexlaunch/internal/privilege"
	"indexlaunch/internal/region"
)

// versionMap tracks, per (tree, field), the last tasks to have read, written
// or reduced each linearized interval of the root domain, and answers
// dependence queries for new accesses. It is the in-process analog of the
// paper's distributed bounding-volume hierarchy used by physical analysis
// (§5): queries and updates cost O(log E + K) where E is the number of
// tracked segments and K the number overlapped.
type versionMap struct {
	mu     sync.Mutex
	fields map[fieldKey]*fieldState

	// queries counts access calls; deps counts dependence edges returned.
	// The counters are the runtime's registry instruments, so Stats and
	// /metrics read them without taking vm.mu.
	queries *metrics.Counter
	deps    *metrics.Counter
}

type fieldKey struct {
	tree  region.TreeID
	field region.FieldID
}

type fieldState struct {
	segs []segment // sorted by lo, pairwise disjoint
}

// segment is the epoch state of one interval of a field: the last write
// event, readers since that write, and pending reducers with their operator.
type segment struct {
	lo, hi   int64
	writer   *Event
	readers  []*Event
	redOp    privilege.OpID
	reducers []*Event
}

func newVersionMap(queries, deps *metrics.Counter) *versionMap {
	return &versionMap{fields: map[fieldKey]*fieldState{}, queries: queries, deps: deps}
}

// access registers an access to the given intervals with privilege priv and
// completion event ev, returning the precondition events the access must
// wait for. Intervals must be sorted and disjoint (as produced by
// region.IntervalsOf).
func (vm *versionMap) access(tree region.TreeID, field region.FieldID,
	ivs []region.Interval, priv privilege.Privilege, redOp privilege.OpID, ev *Event) []*Event {

	if priv == privilege.None || len(ivs) == 0 {
		return nil
	}
	vm.mu.Lock()
	defer vm.mu.Unlock()
	vm.queries.Inc()

	key := fieldKey{tree: tree, field: field}
	fs := vm.fields[key]
	if fs == nil {
		fs = &fieldState{}
		vm.fields[key] = fs
	}

	depSet := map[*Event]struct{}{}
	for _, iv := range ivs {
		fs.accessInterval(iv.Lo, iv.Hi, priv, redOp, ev, depSet)
	}
	// Already-done events stay in the dependence set: waiting on a closed
	// event is free, and filtering them would make the edge set depend on
	// execution timing — dropping launch-ordering edges from trace capture
	// and hiding upstream poison from dependents issued after the failure.
	deps := make([]*Event, 0, len(depSet))
	for d := range depSet {
		if d != ev {
			deps = append(deps, d)
		}
	}
	vm.deps.Add(int64(len(deps)))
	return deps
}

// accessInterval walks the segments overlapping [lo, hi], splitting at the
// boundaries, applies the access to each covered piece, and creates fresh
// segments for uncovered gaps.
func (fs *fieldState) accessInterval(lo, hi int64, priv privilege.Privilege,
	redOp privilege.OpID, ev *Event, deps map[*Event]struct{}) {

	i := sort.Search(len(fs.segs), func(i int) bool { return fs.segs[i].hi >= lo })
	cur := lo
	for cur <= hi {
		if i >= len(fs.segs) || fs.segs[i].lo > hi {
			// Tail gap: the rest of [cur, hi] is untracked.
			fs.insertSegment(i, freshSegment(cur, hi, priv, redOp, ev))
			return
		}
		s := &fs.segs[i]
		if s.lo > cur {
			// Leading gap before this segment.
			gapHi := s.lo - 1
			fs.insertSegment(i, freshSegment(cur, gapHi, priv, redOp, ev))
			cur = gapHi + 1
			i++ // past the inserted gap segment; s shifted right by one
			continue
		}
		// s overlaps cur. Split off any prefix of s before cur.
		if s.lo < cur {
			prefix := s.cloneEpoch()
			prefix.hi = cur - 1
			s.lo = cur
			fs.insertSegment(i, prefix)
			i++
			s = &fs.segs[i]
		}
		// Split off any suffix of s beyond hi.
		if s.hi > hi {
			suffix := s.cloneEpoch()
			suffix.lo = hi + 1
			s.hi = hi
			fs.insertSegment(i+1, suffix)
			s = &fs.segs[i]
		}
		s.apply(priv, redOp, ev, deps)
		cur = s.hi + 1
		i++
	}
}

// cloneEpoch copies s with independent readers/reducers slices. Segment
// splits must not share backing arrays: sibling segments append to their
// epoch lists independently, and an append through one header with spare
// capacity would overwrite an event the other still references — silently
// dropping a dependence edge.
func (s *segment) cloneEpoch() segment {
	c := *s
	c.readers = append([]*Event(nil), s.readers...)
	c.reducers = append([]*Event(nil), s.reducers...)
	return c
}

func freshSegment(lo, hi int64, priv privilege.Privilege, redOp privilege.OpID, ev *Event) segment {
	s := segment{lo: lo, hi: hi}
	s.apply(priv, redOp, ev, nil)
	return s
}

// apply updates the segment's epoch state for an access and records the
// dependence edges in deps (which may be nil for fresh segments).
func (s *segment) apply(priv privilege.Privilege, redOp privilege.OpID, ev *Event, deps map[*Event]struct{}) {
	addDep := func(e *Event) {
		if deps != nil && e != nil {
			deps[e] = struct{}{}
		}
	}
	switch {
	case priv == privilege.Read:
		// Read-after-write and read-after-reduce.
		if len(s.reducers) > 0 {
			for _, r := range s.reducers {
				addDep(r)
			}
		} else {
			addDep(s.writer)
		}
		s.readers = append(s.readers, ev)

	case priv == privilege.Reduce:
		// Reduce-after-write and reduce-after-read; same-operator pending
		// reductions commute, different operators serialize. Readers stay in
		// the epoch: a later same-operator reducer has no edge through the
		// pending reducers (they commute), so dropping the readers here would
		// leave it unordered against a read it must follow. Only a write
		// closes the epoch and clears them.
		addDep(s.writer)
		for _, r := range s.readers {
			addDep(r)
		}
		if len(s.reducers) > 0 && s.redOp != redOp {
			for _, r := range s.reducers {
				addDep(r)
			}
			// The displaced reducers keep ordering obligations against
			// later reducers of the new operator; track them as readers so
			// those edges (and a closing write's) still materialize.
			s.readers = append(s.readers, s.reducers...)
			s.reducers = s.reducers[:0]
		}
		s.redOp = redOp
		s.reducers = append(s.reducers, ev)

	default: // Write, ReadWrite
		addDep(s.writer)
		for _, r := range s.readers {
			addDep(r)
		}
		for _, r := range s.reducers {
			addDep(r)
		}
		s.writer = ev
		s.readers = nil
		s.reducers = nil
		s.redOp = privilege.OpNone
	}
}

func (fs *fieldState) insertSegment(i int, s segment) {
	fs.segs = append(fs.segs, segment{})
	copy(fs.segs[i+1:], fs.segs[i:])
	fs.segs[i] = s
}

// bulkWrite marks the given intervals as last written by ev without
// computing dependencies; used by trace replay to restore version state in
// one step after skipping per-task analysis.
func (vm *versionMap) bulkWrite(tree region.TreeID, field region.FieldID, ivs []region.Interval, ev *Event) {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	key := fieldKey{tree: tree, field: field}
	fs := vm.fields[key]
	if fs == nil {
		fs = &fieldState{}
		vm.fields[key] = fs
	}
	for _, iv := range ivs {
		fs.accessInterval(iv.Lo, iv.Hi, privilege.Write, privilege.OpNone, ev, nil)
	}
}

// lastEvents returns the merged set of all events currently recorded for the
// given intervals (used by trace replay to order a replayed trace after
// everything it reads or overwrites).
func (vm *versionMap) lastEvents(tree region.TreeID, field region.FieldID, ivs []region.Interval) []*Event {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	fs := vm.fields[fieldKey{tree: tree, field: field}]
	if fs == nil {
		return nil
	}
	set := map[*Event]struct{}{}
	for _, iv := range ivs {
		i := sort.Search(len(fs.segs), func(i int) bool { return fs.segs[i].hi >= iv.Lo })
		for ; i < len(fs.segs) && fs.segs[i].lo <= iv.Hi; i++ {
			s := &fs.segs[i]
			if s.writer != nil {
				set[s.writer] = struct{}{}
			}
			for _, r := range s.readers {
				set[r] = struct{}{}
			}
			for _, r := range s.reducers {
				set[r] = struct{}{}
			}
		}
	}
	out := make([]*Event, 0, len(set))
	for e := range set {
		// Finished events are elided (observing Done establishes the
		// ordering already) — unless poisoned, so that a replayed episode
		// still observes upstream failure.
		if !e.Done() || e.Err() != nil {
			out = append(out, e)
		}
	}
	return out
}

// segmentCount returns the number of tracked segments (diagnostics).
func (vm *versionMap) segmentCount() int {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	n := 0
	for _, fs := range vm.fields {
		n += len(fs.segs)
	}
	return n
}
