package rt

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"indexlaunch/internal/core"
	"indexlaunch/internal/domain"
	"indexlaunch/internal/privilege"
	"indexlaunch/internal/projection"
	"indexlaunch/internal/region"
)

func identityRW(p *region.Partition) core.Requirement {
	return core.Requirement{
		Partition: p, Functor: projection.Identity(1),
		Priv: privilege.ReadWrite, Fields: []region.FieldID{fieldVal},
	}
}

func TestEventPoisonPropagation(t *testing.T) {
	boom := errors.New("boom")
	e := NewEvent()
	if e.Err() != nil {
		t.Fatal("untriggered event reports an error")
	}
	e.Poison(boom)
	if !e.Done() || !errors.Is(e.Err(), boom) {
		t.Fatalf("poisoned event: done=%v err=%v", e.Done(), e.Err())
	}
	e.Poison(errors.New("second")) // idempotent: first trigger wins
	if !errors.Is(e.Err(), boom) {
		t.Fatalf("re-poison replaced error: %v", e.Err())
	}

	clean := Completed()
	if err := WaitAllErr([]*Event{clean, e}); !errors.Is(err, boom) {
		t.Fatalf("WaitAllErr = %v, want boom", err)
	}
	merged := Merge(clean, e, Completed())
	if err := merged.WaitErr(); !errors.Is(err, boom) {
		t.Fatalf("merged poison = %v, want boom", err)
	}
}

// A panicking task body must surface as a Future error — tagged with the
// task name and point — and its dependents must skip with ErrUpstreamFailed,
// not crash the process.
func TestPanicIsolatedAndDependentsSkip(t *testing.T) {
	r := MustNew(Config{Nodes: 2, ProcsPerNode: 2, DCR: true, IndexLaunches: true})
	tree, part := lineSetup(t, 40, 4)

	boom := r.MustRegisterTask("boom", func(ctx *Context) ([]byte, error) {
		if ctx.Point.X() == 2 {
			panic("kaboom")
		}
		return incrementTask(ctx)
	})
	inc := r.MustRegisterTask("inc", incrementTask)

	fm1, err := r.ExecuteIndex(core.MustForall("boom", boom, domain.Range1(0, 3), identityRW(part)))
	if err != nil {
		t.Fatal(err)
	}
	fm2, err := r.ExecuteIndex(core.MustForall("inc", inc, domain.Range1(0, 3), identityRW(part)))
	if err != nil {
		t.Fatal(err)
	}

	err1 := fm1.WaitErr()
	var te *TaskError
	if !errors.As(err1, &te) {
		t.Fatalf("launch error %v, want *TaskError", err1)
	}
	if te.Task != "boom" || te.Point.X() != 2 || te.PanicValue != "kaboom" {
		t.Errorf("TaskError = %+v, want task boom, point 2, panic kaboom", te)
	}
	if !strings.Contains(err1.Error(), `task "boom"`) || !strings.Contains(err1.Error(), "panicked") {
		t.Errorf("error not descriptive: %v", err1)
	}

	// The dependent of the failed point skips with ErrUpstreamFailed; the
	// other points run normally.
	f2, _ := fm2.At(domain.Pt1(2))
	if _, err := f2.Get(); !errors.Is(err, ErrUpstreamFailed) {
		t.Errorf("dependent of failed task: err = %v, want ErrUpstreamFailed", err)
	}
	for _, x := range []int64{0, 1, 3} {
		f, _ := fm2.At(domain.Pt1(x))
		if _, err := f.Get(); err != nil {
			t.Errorf("point %d failed: %v", x, err)
		}
	}
	r.Fence()

	// Blocks 0,1,3 saw both increments; block 2 saw neither.
	acc := region.MustFieldF64(tree.Root(), fieldVal)
	for e := int64(0); e < 40; e++ {
		want := 2.0
		if e/10 == 2 {
			want = 0
		}
		if got := acc.Get(domain.Pt1(e)); got != want {
			t.Fatalf("element %d = %v, want %v", e, got, want)
		}
	}

	st := r.Stats()
	if st.Panics != 1 || st.TasksFailed != 1 || st.TasksSkipped != 1 {
		t.Errorf("stats = panics %d, failed %d, skipped %d; want 1, 1, 1",
			st.Panics, st.TasksFailed, st.TasksSkipped)
	}
}

// Skips cascade: a chain a → b → c with a failing must poison all of b, c.
func TestSkipCascadesDownstream(t *testing.T) {
	r := MustNew(Config{Nodes: 2, ProcsPerNode: 2, DCR: true, IndexLaunches: true})
	_, part := lineSetup(t, 40, 4)
	fail := r.MustRegisterTask("fail", func(ctx *Context) ([]byte, error) {
		return nil, errors.New("deliberate")
	})
	inc := r.MustRegisterTask("inc", incrementTask)

	if _, err := r.ExecuteIndex(core.MustForall("fail", fail, domain.Range1(0, 3), identityRW(part))); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := r.ExecuteIndex(core.MustForall("inc", inc, domain.Range1(0, 3), identityRW(part))); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.FenceErr(); err == nil {
		t.Fatal("FenceErr = nil, want aggregated failures")
	}
	st := r.Stats()
	if st.TasksFailed != 4 || st.TasksSkipped != 12 {
		t.Errorf("failed %d, skipped %d; want 4 failed, 12 skipped", st.TasksFailed, st.TasksSkipped)
	}
}

// RunDependents executes downstream tasks even when upstream failed.
func TestRunDependentsPolicy(t *testing.T) {
	r := MustNew(Config{
		Nodes: 2, ProcsPerNode: 2, DCR: true, IndexLaunches: true,
		OnUpstreamFailure: RunDependents,
	})
	tree, part := lineSetup(t, 40, 4)
	fail := r.MustRegisterTask("fail", func(ctx *Context) ([]byte, error) {
		return nil, errors.New("deliberate")
	})
	inc := r.MustRegisterTask("inc", incrementTask)

	if _, err := r.ExecuteIndex(core.MustForall("fail", fail, domain.Range1(0, 3), identityRW(part))); err != nil {
		t.Fatal(err)
	}
	fm, err := r.ExecuteIndex(core.MustForall("inc", inc, domain.Range1(0, 3), identityRW(part)))
	if err != nil {
		t.Fatal(err)
	}
	if err := fm.WaitErr(); err != nil {
		t.Fatalf("dependents should run under RunDependents: %v", err)
	}
	sum, _ := region.SumF64(tree.Root(), fieldVal)
	if sum != 40 {
		t.Errorf("sum = %v, want 40 (every element incremented once)", sum)
	}
	if st := r.Stats(); st.TasksSkipped != 0 || st.TasksFailed != 4 {
		t.Errorf("skipped %d failed %d, want 0 skipped, 4 failed", st.TasksSkipped, st.TasksFailed)
	}
}

// Transient failures recover under Config.Retry with no terminal failures,
// and the retry counter is deterministic.
func TestRetryRecoversTransientFailures(t *testing.T) {
	var mu sync.Mutex
	attempts := map[int64]int{}

	r := MustNew(Config{
		Nodes: 2, ProcsPerNode: 2, DCR: true, IndexLaunches: true,
		Retry: RetryPolicy{Max: 2, Backoff: time.Microsecond},
	})
	tree, part := lineSetup(t, 40, 4)
	flaky := r.MustRegisterTask("flaky", func(ctx *Context) ([]byte, error) {
		x := ctx.Point.X()
		mu.Lock()
		attempts[x]++
		n := attempts[x]
		mu.Unlock()
		if n == 1 && x%2 == 0 {
			return nil, fmt.Errorf("transient fault at %d", x)
		}
		return incrementTask(ctx)
	})
	fm, err := r.ExecuteIndex(core.MustForall("flaky", flaky, domain.Range1(0, 3), identityRW(part)))
	if err != nil {
		t.Fatal(err)
	}
	if err := fm.WaitErr(); err != nil {
		t.Fatalf("retries should recover transients: %v", err)
	}
	sum, _ := region.SumF64(tree.Root(), fieldVal)
	if sum != 40 {
		t.Errorf("sum = %v, want 40", sum)
	}
	st := r.Stats()
	if st.Retries != 2 || st.TasksFailed != 0 || st.TasksExecuted != 4 {
		t.Errorf("retries %d failed %d executed %d; want 2, 0, 4",
			st.Retries, st.TasksFailed, st.TasksExecuted)
	}
}

// backoffFor saturates at MaxBackoff for large attempt counts instead of
// overflowing the shift — the regression the old `d < rp.Backoff` wrap
// check missed for shifts past 63 bits.
func TestBackoffForLargeAttempts(t *testing.T) {
	rp := RetryPolicy{Backoff: time.Second, MaxBackoff: 5 * time.Second}
	want := []time.Duration{time.Second, 2 * time.Second, 4 * time.Second,
		5 * time.Second, 5 * time.Second}
	for i, w := range want {
		if got := rp.backoffFor(i + 1); got != w {
			t.Errorf("backoffFor(%d) = %v, want %v", i+1, got, w)
		}
	}
	for _, attempt := range []int{32, 33, 63, 64, 65, 100, 1 << 20} {
		if got := rp.backoffFor(attempt); got != 5*time.Second {
			t.Errorf("backoffFor(%d) = %v, want saturated cap", attempt, got)
		}
	}
	// Zero MaxBackoff defaults to one minute; the default never goes
	// negative either.
	def := RetryPolicy{Backoff: time.Second}
	for _, attempt := range []int{1, 31, 32, 63, 64, 1 << 20} {
		got := def.backoffFor(attempt)
		if got <= 0 || got > defaultMaxBackoff {
			t.Errorf("default backoffFor(%d) = %v, want (0, %v]", attempt, got, defaultMaxBackoff)
		}
	}
	// The cap wins even when it undercuts the base backoff.
	tight := RetryPolicy{Backoff: time.Minute, MaxBackoff: time.Millisecond}
	if got := tight.backoffFor(1); got != time.Millisecond {
		t.Errorf("capped first backoff = %v, want 1ms", got)
	}
}

// A task failing beyond Retry.Max fails terminally with an attempt count.
func TestRetryExhaustionFailsTerminally(t *testing.T) {
	r := MustNew(Config{
		Nodes: 1, ProcsPerNode: 1, Retry: RetryPolicy{Max: 2},
	})
	always := r.MustRegisterTask("always-fails", func(ctx *Context) ([]byte, error) {
		return nil, errors.New("permanent")
	})
	fut, err := r.ExecuteSingle("doomed", always, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = fut.Get()
	var te *TaskError
	if !errors.As(err, &te) || te.Attempts != 3 {
		t.Fatalf("err = %v, want TaskError with 3 attempts", err)
	}
	st := r.Stats()
	if st.Retries != 2 || st.TasksFailed != 1 {
		t.Errorf("retries %d failed %d, want 2, 1", st.Retries, st.TasksFailed)
	}
}

// Killing one of N nodes mid-launch must not change results: the launch
// completes on surviving nodes, identically to a fault-free run, on both
// the DCR and the centralized path — and the fault counters are
// deterministic across repeated runs.
func TestNodeFailureDegradedCompletion(t *testing.T) {
	for _, dcr := range []bool{true, false} {
		name := "centralized"
		if dcr {
			name = "DCR"
		}
		t.Run(name, func(t *testing.T) {
			run := func(fi *FaultInjector) (float64, Stats) {
				r := MustNew(Config{
					Nodes: 4, ProcsPerNode: 2, DCR: dcr, IndexLaunches: true, Fault: fi,
				})
				tree, part := lineSetup(t, 160, 16)
				inc := r.MustRegisterTask("inc", incrementTask)
				for round := 0; round < 3; round++ {
					if _, err := r.ExecuteIndex(core.MustForall("inc", inc, domain.Range1(0, 15), identityRW(part))); err != nil {
						t.Fatal(err)
					}
				}
				if err := r.FenceErr(); err != nil {
					t.Fatalf("degraded run failed: %v", err)
				}
				sum, err := region.SumF64(tree.Root(), fieldVal)
				if err != nil {
					t.Fatal(err)
				}
				return sum, r.Stats()
			}

			ref, _ := run(nil)
			// Kill node 2 after 20 of the 48 point tasks have been issued —
			// mid-way through the second launch.
			got, st := run(NewFaultInjector(7).KillNode(2, 20))
			if got != ref {
				t.Errorf("degraded sum = %v, fault-free sum = %v", got, ref)
			}
			if st.NodeFailures != 1 {
				t.Errorf("node failures = %d, want 1", st.NodeFailures)
			}
			// Node 2 owns 4 of 16 points per launch; launches 2 and 3 issue
			// after the kill.
			if st.Remapped != 8 {
				t.Errorf("remapped = %d, want 8", st.Remapped)
			}
			// Same seed, same config ⇒ identical fault counters.
			_, st2 := run(NewFaultInjector(7).KillNode(2, 20))
			if st.NodeFailures != st2.NodeFailures || st.Remapped != st2.Remapped ||
				st.TasksFailed != st2.TasksFailed || st.TasksExecuted != st2.TasksExecuted {
				t.Errorf("fault counters diverged across identical runs:\n%+v\n%+v", st, st2)
			}
		})
	}
}

// The injector refuses to kill the last surviving node, and KillRandomNode
// picks the same victim for the same seed.
func TestFaultInjectorBounds(t *testing.T) {
	r := MustNew(Config{Nodes: 2, ProcsPerNode: 1})
	if !r.KillNode(0) {
		t.Fatal("first kill refused")
	}
	if r.KillNode(0) {
		t.Fatal("double kill accepted")
	}
	if r.KillNode(1) {
		t.Fatal("killing the last surviving node accepted")
	}
	alive := r.AliveNodes()
	if len(alive) != 1 || alive[0] != 1 {
		t.Fatalf("alive = %v, want [1]", alive)
	}

	a := NewFaultInjector(99).KillRandomNode(8, 10)
	b := NewFaultInjector(99).KillRandomNode(8, 10)
	if a.kills[0].node != b.kills[0].node {
		t.Errorf("same seed picked different victims: %d vs %d", a.kills[0].node, b.kills[0].node)
	}
}

// FenceTimeout and the context-aware getters return descriptive errors
// naming the hung task instead of blocking forever, and the unfinished work
// remains fence-able afterwards.
func TestFenceTimeoutNamesHungTask(t *testing.T) {
	r := MustNew(Config{Nodes: 1, ProcsPerNode: 1})
	release := make(chan struct{})
	hang := r.MustRegisterTask("hang", func(ctx *Context) ([]byte, error) {
		<-release
		return nil, nil
	})
	fut, err := r.ExecuteSingle("hang-launch", hang, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := fut.GetTimeout(10 * time.Millisecond); err == nil {
		t.Error("GetTimeout on hung task returned nil error")
	}
	err = r.FenceTimeout(10 * time.Millisecond)
	if err == nil {
		t.Fatal("FenceTimeout on hung task returned nil")
	}
	for _, want := range []string{`task "hang"`, `launch "hang-launch"`, "unfinished"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("timeout error %q missing %q", err, want)
		}
	}

	close(release)
	// The hung task went back on the outstanding list: a later fence still
	// waits for it and reports clean completion.
	if err := r.FenceErr(); err != nil {
		t.Errorf("FenceErr after release: %v", err)
	}
	if _, err := fut.Get(); err != nil {
		t.Errorf("future after release: %v", err)
	}
}

// A future map timeout names the unfinished point.
func TestFutureMapWaitTimeout(t *testing.T) {
	r := MustNew(Config{Nodes: 2, ProcsPerNode: 2, DCR: true, IndexLaunches: true})
	_, part := lineSetup(t, 40, 4)
	release := make(chan struct{})
	hang := r.MustRegisterTask("hang", func(ctx *Context) ([]byte, error) {
		if ctx.Point.X() == 3 {
			<-release
		}
		return nil, nil
	})
	fm, err := r.ExecuteIndex(core.MustForall("hang", hang, domain.Range1(0, 3), identityRW(part)))
	if err != nil {
		t.Fatal(err)
	}
	werr := fm.WaitTimeout(10 * time.Millisecond)
	if werr == nil || !strings.Contains(werr.Error(), "point <3>") {
		t.Errorf("WaitTimeout = %v, want error naming point <3>", werr)
	}
	close(release)
	if err := fm.WaitTimeout(time.Second); err != nil {
		t.Errorf("WaitTimeout after release: %v", err)
	}
	r.Fence()
}
