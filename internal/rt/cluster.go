package rt

import (
	"encoding/binary"
	"errors"
	"fmt"

	"indexlaunch/internal/domain"
	"indexlaunch/internal/obs"
	"indexlaunch/internal/wire"
	"indexlaunch/internal/xport"
)

// Cluster mode: the same runtime pipeline, with the transport's far side in
// other OS processes. Config.Cluster hands the runtime a wire.Mesh whose
// node 0 is this process (the launching side — idxserve) and whose other
// nodes are idxnode worker daemons. Three things change, none of them
// semantics:
//
//   - shipSlices broadcasts slice descriptors to the owning workers over
//     the mesh (same broadcast tree, same delivery guarantee) but keeps
//     every slice resident locally too: execution is driven point-by-point
//     from node 0, so the descriptors are the workers' view of what they
//     own, not the execution trigger.
//   - runAttempt executes a region-free point task's body on its owning
//     node via Mesh.Exec — the body actually runs in the worker process.
//     Tasks touching physical regions keep executing locally (region state
//     lives in this process); a transport-unreachable worker falls back to
//     local execution, trading locality for progress, and the health
//     detector handles the node's liveness separately.
//   - heartbeat probes, MarkDead/MarkAlive and resync broadcasts flow over
//     the mesh's sockets instead of in-process channels.
//
// Everything else — dependence analysis, retries, speculation, tracing —
// is unchanged, which is the point: the paper's index-launch pipeline is
// transport-agnostic, and the deterministic in-process transport remains
// the default when Config.Cluster is nil.

// transport is the delivery contract the runtime's centralized path needs.
// *xport.Transport implements it in-process (deterministic, chaos-capable);
// meshTransport implements it across processes over a wire.Mesh.
type transport interface {
	Broadcast(tag string, items []xport.Item)
	BroadcastTraced(tc obs.TraceRef, tag string, items []xport.Item)
	Probe(dst int, maxAttempts int) bool
	MarkDead(node int)
	MarkAlive(node int)
	Recycle()
	Shape() xport.TreeShape
}

// meshTransport adapts a wire.Mesh to the transport interface, serializing
// the runtime's in-process payloads (slice shipments, resync markers) into
// frame bodies.
type meshTransport struct{ m *wire.Mesh }

func (mt meshTransport) Broadcast(tag string, items []xport.Item) {
	mt.m.Broadcast(tag, encodeClusterItems(items))
}

func (mt meshTransport) BroadcastTraced(tc obs.TraceRef, tag string, items []xport.Item) {
	mt.m.BroadcastTraced(tc, tag, encodeClusterItems(items))
}

func (mt meshTransport) Probe(dst int, maxAttempts int) bool { return mt.m.Probe(dst, maxAttempts) }
func (mt meshTransport) MarkDead(node int)                   { mt.m.MarkDead(node) }
func (mt meshTransport) MarkAlive(node int)                  { mt.m.MarkAlive(node) }
func (mt meshTransport) Recycle()                            { mt.m.Recycle() }
func (mt meshTransport) Shape() xport.TreeShape              { return mt.m.Shape() }

func encodeClusterItems(items []xport.Item) []wire.Item {
	out := make([]wire.Item, len(items))
	for i, it := range items {
		out[i] = wire.Item{Dst: it.Dst, Payload: encodeClusterPayload(it.Payload)}
	}
	return out
}

// Cluster payload type discriminators (first byte of a broadcast body).
const (
	clusterPayloadSlice  = 1
	clusterPayloadResync = 2
)

// ClusterMsg is the decoded form of one cluster broadcast payload — what an
// idxnode worker receives through its mesh Deliver callback.
type ClusterMsg struct {
	// Kind is "slice" or "resync".
	Kind string
	// Index is the slice's position in the launch's slice order (Kind
	// "slice").
	Index int
	// Slice is the shipped slice (Kind "slice").
	Slice Slice
	// Epoch is the announced resync epoch (Kind "resync").
	Epoch int64
}

// encodeClusterPayload serializes one transport payload for the mesh.
func encodeClusterPayload(payload any) []byte {
	switch m := payload.(type) {
	case sliceMsg:
		buf := []byte{clusterPayloadSlice}
		buf = binary.AppendUvarint(buf, uint64(m.idx))
		buf = binary.AppendUvarint(buf, uint64(m.s.Node))
		return appendDomain(buf, m.s.Domain)
	case resyncMsg:
		buf := []byte{clusterPayloadResync}
		return binary.AppendVarint(buf, m.epoch)
	default:
		panic(fmt.Sprintf("rt: unshippable transport payload %T", payload))
	}
}

// DecodeClusterPayload parses a mesh broadcast body back into its message.
// idxnode workers call this from their Deliver callback.
func DecodeClusterPayload(b []byte) (ClusterMsg, error) {
	if len(b) == 0 {
		return ClusterMsg{}, fmt.Errorf("rt: empty cluster payload")
	}
	switch b[0] {
	case clusterPayloadSlice:
		d := payloadDecoder{b: b[1:]}
		idx := int(d.uvarint())
		node := int(d.uvarint())
		dom := d.domain()
		if d.err != nil {
			return ClusterMsg{}, d.err
		}
		return ClusterMsg{Kind: "slice", Index: idx, Slice: Slice{Domain: dom, Node: node}}, nil
	case clusterPayloadResync:
		v, n := binary.Varint(b[1:])
		if n <= 0 {
			return ClusterMsg{}, fmt.Errorf("rt: truncated resync payload")
		}
		return ClusterMsg{Kind: "resync", Epoch: v}, nil
	default:
		return ClusterMsg{}, fmt.Errorf("rt: unknown cluster payload type %d", b[0])
	}
}

// appendDomain serializes a domain losslessly: dense domains as their rect,
// sparse domains as their explicit point list.
func appendDomain(buf []byte, d domain.Domain) []byte {
	dim := d.Dim()
	if d.Sparse() {
		pts := d.Points()
		buf = append(buf, 1, byte(dim))
		buf = binary.AppendUvarint(buf, uint64(len(pts)))
		for _, p := range pts {
			for i := 0; i < dim; i++ {
				buf = binary.AppendVarint(buf, p.C[i])
			}
		}
		return buf
	}
	r := d.Bounds()
	buf = append(buf, 0, byte(dim))
	for i := 0; i < dim; i++ {
		buf = binary.AppendVarint(buf, r.Lo.C[i])
	}
	for i := 0; i < dim; i++ {
		buf = binary.AppendVarint(buf, r.Hi.C[i])
	}
	return buf
}

// payloadDecoder is a minimal latching cursor for cluster payload bodies
// (internal/wire's decoder is not importable here without exporting it;
// the format is three fields deep, so a local cursor costs little).
type payloadDecoder struct {
	b   []byte
	off int
	err error
}

func (d *payloadDecoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("rt: truncated cluster payload")
	}
}

func (d *payloadDecoder) u8() byte {
	if d.err != nil || d.off >= len(d.b) {
		d.fail()
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *payloadDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *payloadDecoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *payloadDecoder) domain() domain.Domain {
	sparse := d.u8() == 1
	dim := int(d.u8())
	if d.err != nil || dim < 1 || dim > domain.MaxDim {
		d.fail()
		return domain.Domain{}
	}
	if sparse {
		n := d.uvarint()
		if d.err != nil || n > uint64(len(d.b)-d.off) { // >=1 byte per coord
			d.fail()
			return domain.Domain{}
		}
		pts := make([]domain.Point, 0, n)
		for i := uint64(0); i < n; i++ {
			var p domain.Point
			p.Dim = dim
			for c := 0; c < dim; c++ {
				p.C[c] = d.varint()
			}
			pts = append(pts, p)
		}
		if d.err != nil {
			return domain.Domain{}
		}
		return domain.FromPoints(pts)
	}
	var lo, hi domain.Point
	lo.Dim, hi.Dim = dim, dim
	for c := 0; c < dim; c++ {
		lo.C[c] = d.varint()
	}
	for c := 0; c < dim; c++ {
		hi.C[c] = d.varint()
	}
	if d.err != nil {
		return domain.Domain{}
	}
	return domain.FromRect(domain.Rect{Lo: lo, Hi: hi})
}

// execBody runs one attempt of tr's body: locally by default, or — in
// cluster mode, for region-free tasks owned by a worker node — remotely in
// the owning idxnode process via Mesh.Exec. Remote task errors come back as
// errors and feed the normal retry ladder; a transport-level failure
// (ErrUnreachable) falls back to local execution so an unreachable worker
// degrades placement, not progress.
func (r *Runtime) execBody(tr *taskRun, ctx *Context, node int) ([]byte, error) {
	if r.cluster == nil || node == r.cluster.Self() || len(tr.prs) > 0 {
		return r.runBody(tr.fn, ctx)
	}
	val, err := r.cluster.Exec(node, tr.name, tr.point, tr.args)
	if err != nil && errors.Is(err, wire.ErrUnreachable) {
		return r.runBody(tr.fn, ctx)
	}
	return val, err
}
