package rt

import (
	"sync"

	"indexlaunch/internal/obs"
	"indexlaunch/internal/xport"
)

// This file wires the message transport (internal/xport) into the
// centralized (non-DCR) distribution path. The paper's §5 pipeline ships
// slices from node 0 through an O(log N) broadcast tree; with a transport
// attached, the runtime makes those messages explicit: every slice bound
// for a remote node travels hop-by-hop through the tree, subject to the
// configured ChaosPlan, and the launch proceeds only once every slice has
// been delivered exactly once. Slices for node 0 itself, and slices whose
// destination is already dead at broadcast time, never enter the transport:
// they stay local and the per-point faultCheck re-maps them exactly as it
// did before the transport existed, which is what keeps chaos runs
// byte-identical to fault-free runs.

// sliceMsg is the payload of one slice shipment: the slice plus its index
// in the slicing functor's output, so deliveries — which complete in
// arbitrary order under chaos — reassemble into the original deterministic
// slice order.
type sliceMsg struct {
	idx int
	s   Slice
}

// transportDeliver is the Transport's Deliver callback. The per-broadcast
// handler is installed by shipSlices; the indirection exists because the
// transport is built once in New but each broadcast reassembles into its
// own slice array.
func (r *Runtime) transportDeliver(node int, payload any) {
	r.deliverMu.Lock()
	fn := r.deliverFn
	r.deliverMu.Unlock()
	if fn != nil {
		fn(node, payload)
	}
}

// shipSlices broadcasts the launch's slices through the transport and
// returns them reassembled in original slice order. Caller holds issueMu
// (which serializes broadcasts and makes the r.dead read safe). Without a
// transport it is the identity. tc — the launch's distribute span context
// — rides the message headers so each hop records a child send span.
func (r *Runtime) shipSlices(tag string, slices []Slice, tc obs.TraceRef) []Slice {
	if r.xp == nil || len(slices) == 0 {
		return slices
	}
	out := make([]Slice, len(slices))
	items := make([]xport.Item, 0, len(slices))
	for i, s := range slices {
		node := clampNode(s.Node, r.cfg.Nodes)
		if node == 0 || r.dead[node] {
			// Node-0-local slices have nowhere to go; dead-destination
			// slices stay local so faultCheck re-maps their points.
			out[i] = s
			continue
		}
		if r.cluster != nil {
			// Cluster mode: the worker gets the descriptor (its view of
			// what it owns), but the slice also stays resident here —
			// issuance and analysis run on node 0 and drive execution
			// point-by-point through Mesh.Exec.
			out[i] = s
		}
		items = append(items, xport.Item{Dst: node, Payload: sliceMsg{idx: i, s: s}})
	}
	if len(items) == 0 {
		return out
	}
	if r.cluster != nil {
		// Delivery lands in the worker processes; nothing to reassemble
		// locally. The broadcast still blocks until every worker acked.
		r.xp.BroadcastTraced(tc, tag, items)
		return out
	}
	var mu sync.Mutex
	r.deliverMu.Lock()
	r.deliverFn = func(node int, payload any) {
		m := payload.(sliceMsg)
		mu.Lock()
		out[m.idx] = m.s
		mu.Unlock()
	}
	r.deliverMu.Unlock()
	r.xp.BroadcastTraced(tc, tag, items)
	r.deliverMu.Lock()
	r.deliverFn = nil
	r.deliverMu.Unlock()
	return out
}
