package rt

import (
	"sync/atomic"
	"testing"

	"indexlaunch/internal/core"
	"indexlaunch/internal/domain"
	"indexlaunch/internal/privilege"
	"indexlaunch/internal/projection"
	"indexlaunch/internal/region"
)

func TestBlockMapperShardPoint(t *testing.T) {
	d := domain.Range1(0, 99)
	m := BlockMapper{}
	// Block distribution: first quarter on node 0, last quarter on node 3.
	if n := m.ShardPoint(d, domain.Pt1(0), 4); n != 0 {
		t.Errorf("point 0 -> node %d", n)
	}
	if n := m.ShardPoint(d, domain.Pt1(99), 4); n != 3 {
		t.Errorf("point 99 -> node %d", n)
	}
	if n := m.ShardPoint(d, domain.Pt1(50), 4); n != 2 {
		t.Errorf("point 50 -> node %d", n)
	}
}

func TestBlockMapperShardSparseDomain(t *testing.T) {
	d := domain.DiagonalSlice3(domain.Rect3(0, 0, 0, 3, 3, 3), 4)
	m := BlockMapper{}
	counts := map[int]int{}
	d.Each(func(p domain.Point) bool {
		n := m.ShardPoint(d, p, 3)
		if n < 0 || n >= 3 {
			t.Fatalf("point %v -> node %d", p, n)
		}
		counts[n]++
		return true
	})
	// Near-equal split across the 3 nodes.
	for n, c := range counts {
		if c < int(d.Volume()/3) || c > int(d.Volume()/3)+2 {
			t.Errorf("node %d holds %d of %d points", n, c, d.Volume())
		}
	}
}

func TestBlockMapperSliceAgreesWithShard(t *testing.T) {
	// The default mapper's slicing and sharding functors must agree, so
	// DCR and non-DCR runs place tasks identically.
	d := domain.Range1(0, 63)
	m := BlockMapper{}
	for _, nodes := range []int{1, 3, 8} {
		slices := m.Slice(d, nodes)
		for _, s := range slices {
			s.Domain.Each(func(p domain.Point) bool {
				if got := m.ShardPoint(d, p, nodes); got != s.Node {
					t.Errorf("nodes=%d point %v: slice says %d, shard says %d",
						nodes, p, s.Node, got)
				}
				return true
			})
		}
	}
}

func TestCyclicMapper(t *testing.T) {
	d := domain.Range1(0, 9)
	m := CyclicMapper{}
	for i := int64(0); i < 10; i++ {
		if n := m.ShardPoint(d, domain.Pt1(i), 3); n != int(i%3) {
			t.Errorf("point %d -> node %d, want %d", i, n, i%3)
		}
	}
	slices := m.Slice(d, 3)
	var total int64
	for _, s := range slices {
		s.Domain.Each(func(p domain.Point) bool {
			if m.ShardPoint(d, p, 3) != s.Node {
				t.Errorf("slice/shard disagreement at %v", p)
			}
			return true
		})
		total += s.Domain.Volume()
	}
	if total != 10 {
		t.Errorf("slices cover %d points", total)
	}
}

func TestMemoizingMapper(t *testing.T) {
	m := NewMemoizingMapper(BlockMapper{})
	d := domain.Range1(0, 9)
	for rep := 0; rep < 3; rep++ {
		for i := int64(0); i < 10; i++ {
			got := m.ShardPoint(d, domain.Pt1(i), 2)
			want := BlockMapper{}.ShardPoint(d, domain.Pt1(i), 2)
			if got != want {
				t.Fatalf("memoized answer differs: %d vs %d", got, want)
			}
		}
	}
	hits, misses := m.Stats()
	if misses != 10 || hits != 20 {
		t.Errorf("hits=%d misses=%d, want 20/10", hits, misses)
	}
}

func TestPinnedMapperRoutesEverything(t *testing.T) {
	var executedOn [4]atomic.Int64
	r := MustNew(Config{
		Nodes: 4, ProcsPerNode: 2, DCR: true, IndexLaunches: true,
		Mapper: PinnedMapper{Node: 2},
	})
	fs := region.MustFieldSpace(region.Field{ID: 0, Name: "v", Kind: region.F64})
	tree := region.MustNewTree("m", domain.Range1(0, 15), fs)
	part, _ := tree.PartitionEqual(tree.Root(), "b", 8)
	task := r.MustRegisterTask("where", func(ctx *Context) ([]byte, error) {
		executedOn[ctx.Node].Add(1)
		return nil, nil
	})
	launch := core.MustForall("where", task, domain.Range1(0, 7), core.Requirement{
		Partition: part, Functor: projection.Identity(1),
		Priv: privilege.Read, Fields: []region.FieldID{0},
	})
	fm, err := r.ExecuteIndex(launch)
	if err != nil {
		t.Fatal(err)
	}
	if err := fm.Wait(); err != nil {
		t.Fatal(err)
	}
	for n := range executedOn {
		want := int64(0)
		if n == 2 {
			want = 8
		}
		if got := executedOn[n].Load(); got != want {
			t.Errorf("node %d executed %d tasks, want %d", n, got, want)
		}
	}
}

func TestCustomMapperUsedForSlicing(t *testing.T) {
	// Non-DCR mode consults the slicing functor.
	var executedOn [2]atomic.Int64
	r := MustNew(Config{
		Nodes: 2, ProcsPerNode: 2, DCR: false, IndexLaunches: true,
		Mapper: CyclicMapper{},
	})
	fs := region.MustFieldSpace(region.Field{ID: 0, Name: "v", Kind: region.F64})
	tree := region.MustNewTree("m", domain.Range1(0, 7), fs)
	part, _ := tree.PartitionEqual(tree.Root(), "b", 8)
	task := r.MustRegisterTask("where", func(ctx *Context) ([]byte, error) {
		executedOn[ctx.Node].Add(1)
		return nil, nil
	})
	launch := core.MustForall("where", task, domain.Range1(0, 7), core.Requirement{
		Partition: part, Functor: projection.Identity(1),
		Priv: privilege.Read, Fields: []region.FieldID{0},
	})
	fm, err := r.ExecuteIndex(launch)
	if err != nil {
		t.Fatal(err)
	}
	if err := fm.Wait(); err != nil {
		t.Fatal(err)
	}
	if executedOn[0].Load() != 4 || executedOn[1].Load() != 4 {
		t.Errorf("cyclic slicing: node0=%d node1=%d, want 4/4",
			executedOn[0].Load(), executedOn[1].Load())
	}
}
