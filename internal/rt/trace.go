package rt

import (
	"fmt"

	"indexlaunch/internal/core"
	"indexlaunch/internal/domain"
	"indexlaunch/internal/obs"
	"indexlaunch/internal/privilege"
	"indexlaunch/internal/region"
)

// Tracing (paper §6.2.1, citing Lee et al. [20]) memoizes the dependence
// analysis of a repeated sequence of launches. The first execution of a
// trace captures, per point task, the dependence edges the version map
// produced; subsequent executions replay the captured template, skipping
// version-map queries entirely.
//
// A replayed trace is stitched to the surrounding program with two
// conservative joints: every replayed op waits on the merged last-events of
// all data the trace touches (computed live at replay time), and at the end
// of a replay the version map is bulk-updated so later un-traced work orders
// correctly after the trace.
//
// Replays must issue exactly the ops that were captured (same tasks, same
// points, same launch boundaries); a divergent replay is a programming
// error and panics with a diagnostic.

type traceMode uint8

const (
	traceCapturing traceMode = iota
	traceReplaying
)

type opSig struct {
	task  core.TaskID
	point domain.Point
}

type traceTemplate struct {
	id       uint64
	sigs     []opSig
	deps     [][]int // intra-trace dependence indices per op
	launches []int   // ops consumed per launch call, for replay validation
	writes   map[fieldKey][]region.Interval
	reads    map[fieldKey][]region.Interval
}

type traceState struct {
	mode traceMode
	tmpl *traceTemplate

	// Capture state.
	evIdx map[*Event]int

	// Replay state.
	cursor       int
	launchCursor int
	events       []*Event
	startEv      *Event
}

func (r *Runtime) replaying() bool { return r.trace != nil && r.trace.mode == traceReplaying }
func (r *Runtime) capturing() bool { return r.trace != nil && r.trace.mode == traceCapturing }

// traces is lazily allocated on the runtime.
func (r *Runtime) traceTemplates() map[uint64]*traceTemplate {
	if r.traceStore == nil {
		r.traceStore = map[uint64]*traceTemplate{}
	}
	return r.traceStore
}

// BeginTrace starts a trace episode. The first episode with a given id
// captures; later episodes replay. Traces do not nest. Tracing must be
// enabled in the runtime config.
func (r *Runtime) BeginTrace(id uint64) error {
	r.issueMu.Lock()
	defer r.issueMu.Unlock()
	if !r.cfg.Tracing {
		return fmt.Errorf("rt: tracing disabled in config")
	}
	if r.trace != nil || r.bulk != nil {
		return fmt.Errorf("rt: trace %d begun inside another trace", id)
	}
	if r.cfg.BulkTracing {
		return r.beginBulkTrace(id)
	}
	if tmpl, ok := r.traceTemplates()[id]; ok {
		// Replay: order the whole trace after the current last users of
		// everything it touches.
		var boundary []*Event
		for key, ivs := range tmpl.writes {
			boundary = append(boundary, r.vm.lastEvents(key.tree, key.field, ivs)...)
		}
		for key, ivs := range tmpl.reads {
			boundary = append(boundary, r.vm.lastEvents(key.tree, key.field, ivs)...)
		}
		r.trace = &traceState{
			mode:    traceReplaying,
			tmpl:    tmpl,
			events:  make([]*Event, len(tmpl.sigs)),
			startEv: Merge(boundary...),
		}
		return nil
	}
	r.trace = &traceState{
		mode: traceCapturing,
		tmpl: &traceTemplate{
			id:     id,
			writes: map[fieldKey][]region.Interval{},
			reads:  map[fieldKey][]region.Interval{},
		},
		evIdx: map[*Event]int{},
	}
	return nil
}

// EndTrace finishes the current trace episode.
func (r *Runtime) EndTrace(id uint64) error {
	r.issueMu.Lock()
	defer r.issueMu.Unlock()
	if r.bulk != nil {
		return r.endBulkTrace(id)
	}
	ts := r.trace
	if ts == nil {
		return fmt.Errorf("rt: EndTrace(%d) without BeginTrace", id)
	}
	if ts.tmpl.id != 0 && ts.mode == traceReplaying && ts.tmpl.id != id {
		return fmt.Errorf("rt: EndTrace(%d) does not match trace %d", id, ts.tmpl.id)
	}
	r.trace = nil
	switch ts.mode {
	case traceCapturing:
		ts.tmpl.id = id
		r.traceTemplates()[id] = ts.tmpl
		r.mx.TraceCaptures.Inc()
		if prof := r.cfg.Profile; prof != nil {
			prof.Mark(0, obs.StageCapture, "trace", "trace", domain.Point{}, prof.Now())
		}
	case traceReplaying:
		if ts.cursor != len(ts.tmpl.sigs) {
			return fmt.Errorf("rt: trace %d replay issued %d of %d ops", id, ts.cursor, len(ts.tmpl.sigs))
		}
		// Restore version state in bulk: the merged terminal event of the
		// replay becomes the last writer of everything the trace wrote and
		// a reader of everything it read.
		terminal := Merge(ts.events...)
		for key, ivs := range ts.tmpl.writes {
			r.vm.bulkWrite(key.tree, key.field, ivs, terminal)
		}
		for key, ivs := range ts.tmpl.reads {
			r.vm.access(key.tree, key.field, ivs, privilege.Read, privilege.OpNone, terminal)
		}
		r.outstanding = append(r.outstanding, pendingTask{ev: terminal, name: "trace-replay", tag: "trace"})
		r.mx.TraceReplays.Inc()
		if prof := r.cfg.Profile; prof != nil {
			prof.Mark(0, obs.StageReplay, "trace", "trace", domain.Point{}, prof.Now())
		}
	}
	return nil
}

// recordOp captures one issued point task into the open template. Caller
// holds issueMu.
func (ts *traceState) recordOp(task core.TaskID, p domain.Point, ev *Event, deps []*Event, prs []PhysicalRegion) {
	idx := len(ts.tmpl.sigs)
	ts.evIdx[ev] = idx
	ts.tmpl.sigs = append(ts.tmpl.sigs, opSig{task: task, point: p})
	// Edges to events from outside the trace are dropped: pre-episode
	// ordering is reconstructed at replay time from the version map
	// (startEv), never from the capture run, whose timing-dependent view
	// of pre-trace state (e.g. fresh, never-written regions) says nothing
	// about what a replay will find.
	var intra []int
	for _, d := range deps {
		if j, ok := ts.evIdx[d]; ok {
			intra = append(intra, j)
		}
	}
	ts.tmpl.deps = append(ts.tmpl.deps, intra)
	for _, pr := range prs {
		ivs := pr.Region.Intervals()
		for _, f := range pr.Fields {
			key := fieldKey{tree: pr.Region.Tree.ID, field: f}
			if pr.Priv.IsWrite() {
				ts.tmpl.writes[key] = append(ts.tmpl.writes[key], ivs...)
			} else {
				ts.tmpl.reads[key] = append(ts.tmpl.reads[key], ivs...)
			}
		}
	}
}

// replayDeps returns the precondition events for the next replayed op and
// registers ev as its completion event. Caller holds issueMu.
func (ts *traceState) replayDeps(task core.TaskID, p domain.Point, ev *Event) []*Event {
	if ts.cursor >= len(ts.tmpl.sigs) {
		panic(fmt.Sprintf("rt: trace %d replay issued more ops than captured (%d)", ts.tmpl.id, len(ts.tmpl.sigs)))
	}
	sig := ts.tmpl.sigs[ts.cursor]
	if sig.task != task || !sig.point.Eq(p) {
		panic(fmt.Sprintf("rt: trace %d replay diverged at op %d: captured task %d point %v, replayed task %d point %v",
			ts.tmpl.id, ts.cursor, sig.task, sig.point, task, p))
	}
	ts.events[ts.cursor] = ev
	// Every replayed op waits on the episode boundary in addition to its
	// intra-trace deps; ops with intra-trace deps reach startEv
	// transitively, so only the chain roots gain an edge.
	deps := []*Event{ts.startEv}
	for _, j := range ts.tmpl.deps[ts.cursor] {
		deps = append(deps, ts.events[j])
	}
	ts.cursor++
	return deps
}

// noteLaunch validates launch boundaries across capture and replay.
func (ts *traceState) noteLaunch(n int) {
	switch ts.mode {
	case traceCapturing:
		ts.tmpl.launches = append(ts.tmpl.launches, n)
	case traceReplaying:
		if ts.launchCursor >= len(ts.tmpl.launches) || ts.tmpl.launches[ts.launchCursor] != n {
			panic(fmt.Sprintf("rt: trace %d replay launch %d has %d ops, diverges from capture",
				ts.tmpl.id, ts.launchCursor, n))
		}
		ts.launchCursor++
	}
}
