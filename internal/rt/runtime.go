package rt

import (
	"fmt"
	"sync"
	"sync/atomic"

	"indexlaunch/internal/core"
	"indexlaunch/internal/domain"
	"indexlaunch/internal/privilege"
	"indexlaunch/internal/region"
	"indexlaunch/internal/safety"
)

// Config selects the runtime's execution mode. The four evaluation
// configurations of the paper's figures are the cartesian product of DCR
// and IndexLaunches.
type Config struct {
	// Nodes is the number of simulated nodes; tasks are distributed across
	// them by the mapper. Must be >= 1.
	Nodes int
	// ProcsPerNode bounds concurrent task execution per node. Must be >= 1.
	ProcsPerNode int
	// DCR selects dynamic control replication: point tasks are assigned to
	// nodes by the mapper's sharding functor. When false, the centralized
	// path assigns whole slices via the slicing functor.
	DCR bool
	// IndexLaunches keeps launches compact through analysis. When false,
	// every index launch is expanded into individual single-task launches
	// at issuance, as in the paper's "No IDX" configurations.
	IndexLaunches bool
	// Tracing enables capture/replay of dependence analysis between
	// BeginTrace/EndTrace markers.
	Tracing bool
	// BulkTracing switches tracing to launch granularity (the paper's
	// stated future work): replays keep index launches compact by wiring
	// launch-level dependencies instead of per-task templates. Requires
	// Tracing.
	BulkTracing bool
	// VerifyLaunches runs the hybrid safety analysis on every index launch
	// at issuance; launches that fail are demoted to sequentially-issued
	// task loops (the generated branch of Listing 3).
	VerifyLaunches bool
	// Checks configures the hybrid analysis when VerifyLaunches is set.
	Checks safety.Options
	// Mapper controls distribution; nil selects BlockMapper.
	Mapper Mapper
}

// Stats counts runtime pipeline activity; read them with Runtime.Stats.
type Stats struct {
	// LaunchCalls counts ExecuteIndex invocations; SingleCalls counts
	// ExecuteSingle invocations.
	LaunchCalls int64
	SingleCalls int64
	// IndexLaunched counts launches processed compactly; Expanded counts
	// launches expanded at issuance (No-IDX mode or safety fallback).
	IndexLaunched int64
	Expanded      int64
	// Fallbacks counts launches demoted to task loops by a failed check.
	Fallbacks int64
	// TasksExecuted counts completed point tasks.
	TasksExecuted int64
	// VersionQueries / DepEdges mirror the version map counters.
	VersionQueries int64
	DepEdges       int64
	// DynamicCheckEvals counts projection-functor evaluations spent in
	// dynamic safety checks.
	DynamicCheckEvals int64
	// TraceCaptures / TraceReplays count completed trace episodes.
	TraceCaptures int64
	TraceReplays  int64
	// AnalysisSkipped counts point tasks whose dependence analysis was
	// satisfied from a trace template instead of the version map.
	AnalysisSkipped int64
}

// Runtime is a single-process implementation of the paper's runtime
// pipeline. Methods that issue work (ExecuteIndex, ExecuteSingle, fences and
// trace markers) must be called from one goroutine, preserving the implicit
// program order of the sequential-semantics programming model; task bodies
// themselves run concurrently on the worker pool.
type Runtime struct {
	cfg    Config
	mapper Mapper

	tasks  []taskEntry
	byName map[string]core.TaskID

	vm    *versionMap
	slots []chan struct{} // per-node processor slots

	issueMu     sync.Mutex
	reduceMu    sync.Mutex
	outstanding []*Event
	trace       *traceState
	traceStore  map[uint64]*traceTemplate
	bulk        *bulkState
	bulkStore   map[uint64]*bulkTemplate

	// Per-launch bulk-trace scratch, valid while issueMu is held.
	pendingBulkDeps []*Event
	pendingPointEvs []*Event

	tasksExecuted atomic.Int64
	dynEvals      int64
	captures      int64
	replays       int64
	skipped       int64
	launchCalls   int64
	singleCalls   int64
	indexLaunched int64
	expanded      int64
	fallbacks     int64
}

type taskEntry struct {
	name string
	fn   TaskFn
}

// New creates a runtime. Invalid configurations are rejected.
func New(cfg Config) (*Runtime, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("rt: config requires Nodes >= 1, got %d", cfg.Nodes)
	}
	if cfg.ProcsPerNode < 1 {
		return nil, fmt.Errorf("rt: config requires ProcsPerNode >= 1, got %d", cfg.ProcsPerNode)
	}
	m := cfg.Mapper
	if m == nil {
		m = BlockMapper{}
	}
	r := &Runtime{
		cfg:    cfg,
		mapper: m,
		byName: map[string]core.TaskID{},
		vm:     newVersionMap(),
		slots:  make([]chan struct{}, cfg.Nodes),
	}
	for i := range r.slots {
		r.slots[i] = make(chan struct{}, cfg.ProcsPerNode)
	}
	return r, nil
}

// MustNew is New that panics on config errors.
func MustNew(cfg Config) *Runtime {
	r, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// RegisterTask registers a task variant and returns its ID. Task names must
// be unique.
func (r *Runtime) RegisterTask(name string, fn TaskFn) (core.TaskID, error) {
	if _, dup := r.byName[name]; dup {
		return 0, fmt.Errorf("rt: task %q already registered", name)
	}
	id := core.TaskID(len(r.tasks))
	r.tasks = append(r.tasks, taskEntry{name: name, fn: fn})
	r.byName[name] = id
	return id, nil
}

// MustRegisterTask is RegisterTask that panics on error.
func (r *Runtime) MustRegisterTask(name string, fn TaskFn) core.TaskID {
	id, err := r.RegisterTask(name, fn)
	if err != nil {
		panic(err)
	}
	return id
}

// Config returns the runtime's configuration.
func (r *Runtime) Config() Config { return r.cfg }

// Stats returns a snapshot of the pipeline counters.
func (r *Runtime) Stats() Stats {
	r.vm.mu.Lock()
	vq, de := r.vm.queries, r.vm.deps
	r.vm.mu.Unlock()
	return Stats{
		LaunchCalls:       atomic.LoadInt64(&r.launchCalls),
		SingleCalls:       atomic.LoadInt64(&r.singleCalls),
		IndexLaunched:     atomic.LoadInt64(&r.indexLaunched),
		Expanded:          atomic.LoadInt64(&r.expanded),
		Fallbacks:         atomic.LoadInt64(&r.fallbacks),
		TasksExecuted:     r.tasksExecuted.Load(),
		VersionQueries:    vq,
		DepEdges:          de,
		DynamicCheckEvals: atomic.LoadInt64(&r.dynEvals),
		TraceCaptures:     atomic.LoadInt64(&r.captures),
		TraceReplays:      atomic.LoadInt64(&r.replays),
		AnalysisSkipped:   atomic.LoadInt64(&r.skipped),
	}
}

// ExecuteIndex issues an index launch and returns its future map. The
// launch is analyzed, distributed and executed asynchronously; Wait on the
// future map (or a fence) to observe completion.
func (r *Runtime) ExecuteIndex(l *core.IndexLaunch) (*FutureMap, error) {
	r.issueMu.Lock()
	defer r.issueMu.Unlock()
	atomic.AddInt64(&r.launchCalls, 1)

	if int(l.Task) >= len(r.tasks) {
		return nil, fmt.Errorf("rt: launch %q names unregistered task %d", l.Tag, l.Task)
	}

	useIndex := r.cfg.IndexLaunches
	if useIndex && r.cfg.VerifyLaunches && !r.replaying() && !r.bulkReplaying() {
		res := l.Verify(r.cfg.Checks)
		atomic.AddInt64(&r.dynEvals, res.DynamicEvaluations)
		if !res.Safe {
			// Listing 3's else-branch: run the original task loop.
			atomic.AddInt64(&r.fallbacks, 1)
			useIndex = false
		}
	}

	if useIndex {
		atomic.AddInt64(&r.indexLaunched, 1)
	} else {
		atomic.AddInt64(&r.expanded, 1)
	}

	// Distribution: compute the node for every point. With DCR the
	// sharding functor is evaluated per point (memoizable, no
	// communication); without DCR the slicing functor produces per-node
	// slices. Either way the real runtime ends with a point → node
	// assignment; the cost difference between the two paths is modeled in
	// internal/sim.
	assign := r.assignNodes(l.Domain)

	if r.bulkReplaying() {
		r.pendingBulkDeps = r.bulk.replayLaunchDeps(l.Task, int(l.Parallelism()))
	}
	r.pendingPointEvs = r.pendingPointEvs[:0]

	fm := newFutureMap()
	err := l.Each(func(pt core.PointTask) bool {
		prs := make([]PhysicalRegion, len(pt.Regions))
		for i, reg := range pt.Regions {
			req := l.Requirements[i]
			prs[i] = PhysicalRegion{Region: reg, Priv: req.Priv, RedOp: req.RedOp, Fields: req.Fields}
		}
		node := assign(pt.Point)
		fut := r.issuePoint(l.Task, l.Tag, pt.Point, node, prs, l.ArgsAt(pt.Point))
		fm.futures[pt.Point] = fut
		return true
	})
	if err != nil {
		return nil, err
	}
	switch {
	case r.trace != nil:
		r.trace.noteLaunch(len(fm.futures))
	case r.bulkCapturing():
		r.bulk.captureLaunchDone(l.Task, len(fm.futures))
	case r.bulkReplaying():
		r.bulk.replayLaunchDone(r.pendingPointEvs)
		r.pendingBulkDeps = nil
	}
	fm.seal()
	return fm, nil
}

func (r *Runtime) bulkCapturing() bool { return r.bulk != nil && r.bulk.mode == traceCapturing }
func (r *Runtime) bulkReplaying() bool { return r.bulk != nil && r.bulk.mode == traceReplaying }

// SingleReq is a region requirement of a single-task launch: a concrete
// region rather than a ⟨partition, functor⟩ pair.
type SingleReq struct {
	Region *region.Region
	Priv   privilege.Privilege
	RedOp  privilege.OpID
	Fields []region.FieldID
}

// ExecuteSingle issues one task. The task is placed on the node selected by
// the sharding functor for a singleton domain.
func (r *Runtime) ExecuteSingle(tag string, task core.TaskID, reqs []SingleReq, args []byte) (*Future, error) {
	r.issueMu.Lock()
	defer r.issueMu.Unlock()
	atomic.AddInt64(&r.singleCalls, 1)
	if int(task) >= len(r.tasks) {
		return nil, fmt.Errorf("rt: single launch %q names unregistered task %d", tag, task)
	}
	prs := make([]PhysicalRegion, len(reqs))
	for i, req := range reqs {
		if req.Region == nil {
			return nil, fmt.Errorf("rt: single launch %q requirement %d has nil region", tag, i)
		}
		prs[i] = PhysicalRegion{Region: req.Region, Priv: req.Priv, RedOp: req.RedOp, Fields: req.Fields}
	}
	p := domain.Pt1(0)
	node := r.mapper.ShardPoint(domain.Range1(0, 0), p, r.cfg.Nodes)
	if r.bulkReplaying() {
		r.pendingBulkDeps = r.bulk.replayLaunchDeps(task, 1)
		r.pendingPointEvs = r.pendingPointEvs[:0]
	}
	fut := r.issuePoint(task, tag, p, node, prs, args)
	switch {
	case r.trace != nil:
		r.trace.noteLaunch(1)
	case r.bulkCapturing():
		r.bulk.captureLaunchDone(task, 1)
	case r.bulkReplaying():
		r.bulk.replayLaunchDone(r.pendingPointEvs)
		r.pendingBulkDeps = nil
	}
	return fut, nil
}

// assignNodes returns the point → node assignment for a launch domain.
func (r *Runtime) assignNodes(d domain.Domain) func(domain.Point) int {
	if r.cfg.DCR {
		return func(p domain.Point) int {
			n := r.mapper.ShardPoint(d, p, r.cfg.Nodes)
			return clampNode(n, r.cfg.Nodes)
		}
	}
	slices := r.mapper.Slice(d, r.cfg.Nodes)
	return func(p domain.Point) int {
		for _, s := range slices {
			if s.Domain.Contains(p) {
				return clampNode(s.Node, r.cfg.Nodes)
			}
		}
		return 0
	}
}

func clampNode(n, nodes int) int {
	if n < 0 {
		return 0
	}
	if n >= nodes {
		return nodes - 1
	}
	return n
}

// issuePoint performs per-point dependence analysis (or trace replay) and
// hands the task to the executor. Caller holds issueMu.
func (r *Runtime) issuePoint(task core.TaskID, tag string, p domain.Point, node int,
	prs []PhysicalRegion, args []byte) *Future {

	fut := newFuture()
	ev := fut.ev

	var deps []*Event
	switch {
	case r.replaying():
		deps = r.trace.replayDeps(task, p, ev)
		atomic.AddInt64(&r.skipped, 1)
	case r.bulkReplaying():
		deps = r.pendingBulkDeps
		r.pendingPointEvs = append(r.pendingPointEvs, ev)
		atomic.AddInt64(&r.skipped, 1)
	default:
		depSet := map[*Event]struct{}{}
		for _, pr := range prs {
			ivs := pr.Region.Intervals()
			for _, f := range pr.Fields {
				for _, d := range r.vm.access(pr.Region.Tree.ID, f, ivs, pr.Priv, pr.RedOp, ev) {
					depSet[d] = struct{}{}
				}
			}
		}
		deps = make([]*Event, 0, len(depSet))
		for d := range depSet {
			deps = append(deps, d)
		}
		if r.capturing() {
			r.trace.recordOp(task, p, ev, deps, prs)
		}
		if r.bulkCapturing() {
			for _, d := range deps {
				r.bulk.captureDep(d)
			}
			r.bulk.capturePoint(ev, prs)
		}
	}

	r.outstanding = append(r.outstanding, ev)
	r.pruneOutstanding()

	ctx := &Context{Point: p, Node: node, Task: task, Args: args, regions: prs}
	fn := r.tasks[task].fn
	go func() {
		WaitAll(deps)
		slot := r.slots[node]
		slot <- struct{}{}
		defer func() { <-slot }()
		val, err := fn(ctx)
		if len(ctx.reducers) > 0 || len(ctx.reducersI64) > 0 {
			r.reduceMu.Lock()
			ctx.flushReductions()
			r.reduceMu.Unlock()
		}
		r.tasksExecuted.Add(1)
		fut.complete(val, err)
	}()
	return fut
}

func (r *Runtime) pruneOutstanding() {
	if len(r.outstanding) < 4096 {
		return
	}
	kept := r.outstanding[:0]
	for _, e := range r.outstanding {
		if !e.Done() {
			kept = append(kept, e)
		}
	}
	r.outstanding = kept
}

// Fence blocks until every previously issued task has completed — an
// execution fence in Legion terms.
func (r *Runtime) Fence() {
	r.issueMu.Lock()
	waiting := make([]*Event, len(r.outstanding))
	copy(waiting, r.outstanding)
	r.outstanding = r.outstanding[:0]
	r.issueMu.Unlock()
	WaitAll(waiting)
}

func (r *Runtime) taskName(id core.TaskID) string {
	if int(id) < len(r.tasks) {
		return r.tasks[id].name
	}
	return fmt.Sprintf("task%d", id)
}
