package rt

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"indexlaunch/internal/core"
	"indexlaunch/internal/domain"
	"indexlaunch/internal/metrics"
	"indexlaunch/internal/obs"
	"indexlaunch/internal/privilege"
	"indexlaunch/internal/region"
	"indexlaunch/internal/safety"
	"indexlaunch/internal/wire"
	"indexlaunch/internal/xport"
)

// Config selects the runtime's execution mode. The four evaluation
// configurations of the paper's figures are the cartesian product of DCR
// and IndexLaunches.
type Config struct {
	// Nodes is the number of simulated nodes; tasks are distributed across
	// them by the mapper. Must be >= 1.
	Nodes int
	// ProcsPerNode bounds concurrent task execution per node. Must be >= 1.
	ProcsPerNode int
	// DCR selects dynamic control replication: point tasks are assigned to
	// nodes by the mapper's sharding functor. When false, the centralized
	// path assigns whole slices via the slicing functor.
	DCR bool
	// IndexLaunches keeps launches compact through analysis. When false,
	// every index launch is expanded into individual single-task launches
	// at issuance, as in the paper's "No IDX" configurations.
	IndexLaunches bool
	// Tracing enables capture/replay of dependence analysis between
	// BeginTrace/EndTrace markers.
	Tracing bool
	// BulkTracing switches tracing to launch granularity (the paper's
	// stated future work): replays keep index launches compact by wiring
	// launch-level dependencies instead of per-task templates. Requires
	// Tracing.
	BulkTracing bool
	// VerifyLaunches runs the hybrid safety analysis on every index launch
	// at issuance; launches that fail are demoted to sequentially-issued
	// task loops (the generated branch of Listing 3).
	VerifyLaunches bool
	// Checks configures the hybrid analysis when VerifyLaunches is set.
	Checks safety.Options
	// Mapper controls distribution; nil selects BlockMapper.
	Mapper Mapper
	// Retry re-executes failed point tasks (body errors and panics) on
	// their original node with exponential backoff. The zero value
	// disables retry.
	Retry RetryPolicy
	// OnUpstreamFailure selects what dependents of a failed task do; the
	// zero value, SkipDependents, fails them with ErrUpstreamFailed.
	OnUpstreamFailure FailurePolicy
	// Fault optionally injects deterministic simulated node failures at
	// issuance boundaries; nil injects none.
	Fault *FaultInjector
	// Heartbeat enables the self-healing failure detector: heartbeat probes
	// over the transport's broadcast tree, accrual-based suspect/dead
	// transitions, quarantine and rejoin. The zero value disables it, which
	// keeps the explicit kill path's semantics. Enabling it gives the DCR
	// path a transport too (probe traffic only).
	Heartbeat HeartbeatPolicy
	// Speculate enables straggler re-launch: point tasks running past an
	// adaptive latency threshold get a backup attempt on another healthy
	// node, first completion wins. The zero value disables it. Speculated
	// task bodies must be pure or reduction-only (direct RW region writes
	// would race between attempts) and should watch Context.Cancelled.
	Speculate SpeculationPolicy
	// Chaos injects deterministic message-level faults (drop, delay,
	// duplication, reordering, partitions) into the centralized path's
	// slice transport. Requires DCR == false: the DCR path replicates
	// control and sends no slice messages. Nil injects none; the transport
	// still carries slices fault-free when the path is centralized.
	Chaos *xport.ChaosPlan
	// Retransmit tunes the transport's per-hop ack-timeout ladder; the
	// zero value uses the transport defaults.
	Retransmit xport.RetransmitPolicy
	// Cluster replaces the in-process transport with a socket mesh
	// (internal/wire): slice shipments, probes and resync broadcasts
	// travel over it, and region-free point tasks execute in the worker
	// process owning their node. The mesh's node 0 must be this process
	// and its size must equal Nodes. Requires the centralized path
	// (DCR == false) and excludes Chaos — socket-level chaos is injected
	// by wire.Proxy, outside the process. Nil (the default) keeps the
	// deterministic in-process transport; every existing configuration is
	// byte-identical in that mode.
	Cluster *wire.Mesh
	// Profile attaches an observability recorder (internal/obs): pipeline
	// stage spans (issuance, logical, distribution, physical, execute),
	// retry/fault/fence incidents and trace capture/replay events are
	// recorded into it, along with the dependence edges the critical-path
	// analysis walks. Nil disables profiling; the disabled hooks cost one
	// predictable branch per site and allocate nothing.
	Profile *obs.Recorder
	// Metrics attaches a live metrics registry (internal/metrics): pipeline
	// counters, stage-latency histograms, worker-queue gauges and the
	// message-transport counters are registered and recorded into it, ready
	// for /metrics exposition. Nil disables the timing-dependent
	// observations (the clock reads); the counters themselves are always
	// maintained — in a private registry — because Runtime.Stats is a
	// read-through view over them.
	Metrics *metrics.Registry
}

// Stats counts runtime pipeline activity; read them with Runtime.Stats.
type Stats struct {
	// LaunchCalls counts ExecuteIndex invocations; SingleCalls counts
	// ExecuteSingle invocations.
	LaunchCalls int64
	SingleCalls int64
	// IndexLaunched counts launches processed compactly; Expanded counts
	// launches expanded at issuance (No-IDX mode or safety fallback).
	IndexLaunched int64
	Expanded      int64
	// Fallbacks counts launches demoted to task loops by a failed check.
	Fallbacks int64
	// TasksExecuted counts completed point tasks.
	TasksExecuted int64
	// VersionQueries / DepEdges mirror the version map counters.
	VersionQueries int64
	DepEdges       int64
	// DynamicCheckEvals counts projection-functor evaluations spent in
	// dynamic safety checks.
	DynamicCheckEvals int64
	// TraceCaptures / TraceReplays count completed trace episodes.
	TraceCaptures int64
	TraceReplays  int64
	// AnalysisSkipped counts point tasks whose dependence analysis was
	// satisfied from a trace template instead of the version map.
	AnalysisSkipped int64
	// Panics counts task-body panics recovered by the executor (every
	// attempt counts); Retries counts re-executions of failed attempts.
	Panics  int64
	Retries int64
	// TasksFailed counts tasks that failed terminally (after retries);
	// TasksSkipped counts tasks skipped because an upstream task failed.
	TasksFailed  int64
	TasksSkipped int64
	// NodeFailures counts simulated nodes killed; Remapped counts point
	// tasks re-mapped off a dead node at issuance.
	NodeFailures int64
	Remapped     int64
	// Message-transport counters, all zero when the runtime has no
	// transport (DCR mode). MsgSends counts hop-level slice sends,
	// MsgRetransmits timeout-driven re-sends, MsgDrops chaos-lost
	// transmissions (data and acks), MsgDedups received duplicates
	// suppressed by sequence numbers.
	MsgSends       int64
	MsgRetransmits int64
	MsgDrops       int64
	MsgDedups      int64
	// Reparents counts broadcast-tree orphan adoptions (live nodes routed
	// through a surviving ancestor because their parent died);
	// DirectBroadcasts counts broadcasts that abandoned a too-degraded
	// tree for direct node-0 sends.
	Reparents        int64
	DirectBroadcasts int64
	// Self-healing counters, all zero without a HeartbeatPolicy.
	// HealthProbes counts heartbeat probe round trips, HealthProbeFails
	// probes that exhausted their attempt budget, HealthSuspects detector
	// transitions into suspicion, HealthDeaths suspects declared dead,
	// HealthRejoins quarantined nodes readmitted to the node set.
	HealthProbes     int64
	HealthProbeFails int64
	HealthSuspects   int64
	HealthDeaths     int64
	HealthRejoins    int64
	// Straggler-speculation counters, all zero without a SpeculationPolicy.
	// SpecLaunched counts backup launches, SpecWon backups that committed
	// before the original attempt, SpecWasted attempts discarded because
	// the other attempt won.
	SpecLaunched int64
	SpecWon      int64
	SpecWasted   int64
}

// Runtime is a single-process implementation of the paper's runtime
// pipeline. Methods that issue work (ExecuteIndex, ExecuteSingle, fences and
// trace markers) must be called from one goroutine, preserving the implicit
// program order of the sequential-semantics programming model; task bodies
// themselves run concurrently on the worker pool.
type Runtime struct {
	cfg    Config
	mapper Mapper

	tasks  []taskEntry
	byName map[string]core.TaskID

	vm    *versionMap
	slots []chan struct{} // per-node processor slots

	issueMu     sync.Mutex
	reduceMu    sync.Mutex
	outstanding []pendingTask
	trace       *traceState
	traceStore  map[uint64]*traceTemplate
	bulk        *bulkState
	bulkStore   map[uint64]*bulkTemplate

	// Per-launch bulk-trace scratch, valid while issueMu is held.
	pendingBulkDeps []*Event
	pendingPointEvs []*Event

	// Fault state, guarded by issueMu: node liveness and the issuance
	// counter that drives deterministic fault injection.
	dead        []bool
	issuedTotal int64

	// Self-healing state, guarded by issueMu; nil without a
	// HeartbeatPolicy. specOn caches whether straggler speculation is
	// active (policy enabled and more than one node to speculate onto).
	hm     *healthManager
	specOn bool

	// Message transport for the centralized path; nil in DCR mode. Either
	// the deterministic in-process *xport.Transport or, in cluster mode, a
	// meshTransport over Config.Cluster's socket mesh. The per-broadcast
	// delivery handler is installed by shipSlices under deliverMu
	// (transport goroutines call it concurrently).
	xp        transport
	cluster   *wire.Mesh
	deliverMu sync.Mutex
	deliverFn func(node int, payload any)

	// stop cancels in-flight retry backoff waits on Shutdown.
	stop     chan struct{}
	stopOnce sync.Once

	// Profiling state, guarded by issueMu: span IDs of live completion
	// events (for dependence-edge recording) and the per-launch physical
	// analysis accumulator used to carve the issue-span residual.
	profIDs    map[*Event]int64
	profPhysNS int64

	// Distributed-trace state, guarded by issueMu: the current job's span
	// context (installed per attempt by the scheduler via SetTraceRef) and
	// the launch/fence sequence counter deriving per-launch child
	// contexts. A zero jobTC means untraced — the pre-trace behavior.
	jobTC obs.TraceRef
	tcSeq uint64

	// Pipeline metrics. The counters live in reg (the caller's registry,
	// or a private one when Config.Metrics is nil) and Stats reads them
	// back — there is no second bookkeeping path. mxOn gates the
	// timing-dependent histogram observations: counting is one atomic add
	// either way, but latency histograms need clock reads the disabled
	// state must not pay for. mxEpoch anchors those clock reads when no
	// profiler supplies a timebase.
	reg     *metrics.Registry
	mx      *metrics.Pipeline
	mxOn    bool
	mxEpoch time.Time
}

// pendingTask is an outstanding point task a fence may wait on, with enough
// identity to name it in timeout errors.
type pendingTask struct {
	ev    *Event
	name  string // registered task name (or a synthetic label)
	tag   string
	point domain.Point
}

type taskEntry struct {
	name string
	fn   TaskFn
}

// New creates a runtime. Invalid configurations are rejected.
func New(cfg Config) (*Runtime, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("rt: config requires Nodes >= 1, got %d", cfg.Nodes)
	}
	if cfg.ProcsPerNode < 1 {
		return nil, fmt.Errorf("rt: config requires ProcsPerNode >= 1, got %d", cfg.ProcsPerNode)
	}
	m := cfg.Mapper
	if m == nil {
		m = BlockMapper{}
	}
	if cfg.Retry.Max < 0 {
		return nil, fmt.Errorf("rt: config requires Retry.Max >= 0, got %d", cfg.Retry.Max)
	}
	if cfg.Chaos != nil && cfg.DCR {
		return nil, fmt.Errorf("rt: Chaos requires the centralized path (DCR == false): the DCR path sends no slice messages")
	}
	if cfg.Heartbeat.Every < 0 {
		return nil, fmt.Errorf("rt: config requires Heartbeat.Every >= 0, got %d", cfg.Heartbeat.Every)
	}
	if q := cfg.Speculate.Quantile; q < 0 || q >= 1 {
		return nil, fmt.Errorf("rt: config requires Speculate.Quantile in [0, 1), got %v", q)
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	mx := metrics.NewPipeline(reg)
	r := &Runtime{
		cfg:     cfg,
		mapper:  m,
		byName:  map[string]core.TaskID{},
		vm:      newVersionMap(mx.VersionQueries, mx.DepEdges),
		slots:   make([]chan struct{}, cfg.Nodes),
		dead:    make([]bool, cfg.Nodes),
		stop:    make(chan struct{}),
		reg:     reg,
		mx:      mx,
		mxOn:    cfg.Metrics != nil,
		mxEpoch: time.Now(),
	}
	r.hm = newHealthManager(cfg)
	r.specOn = cfg.Speculate.Enabled() && cfg.Nodes > 1
	// The centralized path always gets a transport (it ships slices); with
	// a HeartbeatPolicy the DCR path gets one too, carrying probe traffic
	// only — the detector needs real routes for chaos to starve. Cluster
	// mode swaps the in-process transport for the socket mesh.
	switch {
	case cfg.Cluster != nil:
		if cfg.DCR {
			return nil, fmt.Errorf("rt: Cluster requires the centralized path (DCR == false)")
		}
		if cfg.Chaos != nil {
			return nil, fmt.Errorf("rt: Cluster excludes Chaos: socket-level chaos is injected by wire.Proxy, outside the process")
		}
		if got := cfg.Cluster.Nodes(); got != cfg.Nodes {
			return nil, fmt.Errorf("rt: Cluster spans %d nodes, config says %d", got, cfg.Nodes)
		}
		if self := cfg.Cluster.Self(); self != 0 {
			return nil, fmt.Errorf("rt: Cluster node %d cannot host the runtime: only node 0 issues launches", self)
		}
		r.cluster = cfg.Cluster
		r.xp = meshTransport{m: cfg.Cluster}
	case !cfg.DCR || cfg.Heartbeat.Enabled():
		xp, err := xport.New(cfg.Nodes, xport.Options{
			Chaos:      cfg.Chaos,
			Retransmit: cfg.Retransmit,
			Prof:       cfg.Profile,
			Metrics:    reg,
			Deliver:    r.transportDeliver,
		})
		if err != nil {
			return nil, err
		}
		r.xp = xp
	}
	if cfg.Profile != nil {
		r.profIDs = map[*Event]int64{}
	}
	for i := range r.slots {
		r.slots[i] = make(chan struct{}, cfg.ProcsPerNode)
	}
	return r, nil
}

// MustNew is New that panics on config errors.
func MustNew(cfg Config) *Runtime {
	r, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// RegisterTask registers a task variant and returns its ID. Task names must
// be unique.
func (r *Runtime) RegisterTask(name string, fn TaskFn) (core.TaskID, error) {
	if _, dup := r.byName[name]; dup {
		return 0, fmt.Errorf("rt: task %q already registered", name)
	}
	id := core.TaskID(len(r.tasks))
	r.tasks = append(r.tasks, taskEntry{name: name, fn: fn})
	r.byName[name] = id
	return id, nil
}

// MustRegisterTask is RegisterTask that panics on error.
func (r *Runtime) MustRegisterTask(name string, fn TaskFn) core.TaskID {
	id, err := r.RegisterTask(name, fn)
	if err != nil {
		panic(err)
	}
	return id
}

// Config returns the runtime's configuration.
func (r *Runtime) Config() Config { return r.cfg }

// TaskNamed returns the ID of a registered task by name. It lets code that
// did not register the task issue launches against it — the scheduler's
// jobs run on pooled executor runtimes whose task set was registered once
// by a setup hook. Safe only after registration has finished (the runtime's
// single-issuer contract already requires that).
func (r *Runtime) TaskNamed(name string) (core.TaskID, bool) {
	id, ok := r.byName[name]
	return id, ok
}

// Stats returns a snapshot of the pipeline counters. It is a read-through
// view over the runtime's metrics registry — the same counters /metrics
// exposes — so every value is an atomic read and snapshots taken while
// tasks execute concurrently are never torn. The transport registers its
// counters on the same registry, so the Msg* fields need no transport
// round-trip (they stay zero in DCR mode, which sends no slice messages).
func (r *Runtime) Stats() Stats {
	mx := r.mx
	return Stats{
		LaunchCalls:       mx.LaunchCalls.Value(),
		SingleCalls:       mx.SingleCalls.Value(),
		IndexLaunched:     mx.IndexLaunched.Value(),
		Expanded:          mx.Expanded.Value(),
		Fallbacks:         mx.Fallbacks.Value(),
		TasksExecuted:     mx.TasksExecuted.Value(),
		VersionQueries:    mx.VersionQueries.Value(),
		DepEdges:          mx.DepEdges.Value(),
		DynamicCheckEvals: mx.DynamicCheckEvals.Value(),
		TraceCaptures:     mx.TraceCaptures.Value(),
		TraceReplays:      mx.TraceReplays.Value(),
		AnalysisSkipped:   mx.AnalysisSkipped.Value(),
		Panics:            mx.Panics.Value(),
		Retries:           mx.Retries.Value(),
		TasksFailed:       mx.TasksFailed.Value(),
		TasksSkipped:      mx.TasksSkipped.Value(),
		NodeFailures:      mx.NodeFailures.Value(),
		Remapped:          mx.Remapped.Value(),
		MsgSends:          mx.Sends.Value(),
		MsgRetransmits:    mx.Retransmits.Value(),
		MsgDrops:          mx.Drops.Value(),
		MsgDedups:         mx.Dedups.Value(),
		Reparents:         mx.Reparents.Value(),
		DirectBroadcasts:  mx.DirectBroadcasts.Value(),
		HealthProbes:      mx.HealthProbes.Value(),
		HealthProbeFails:  mx.HealthProbeFails.Value(),
		HealthSuspects:    mx.HealthSuspects.Value(),
		HealthDeaths:      mx.HealthDeaths.Value(),
		HealthRejoins:     mx.HealthRejoins.Value(),
		SpecLaunched:      mx.SpecLaunched.Value(),
		SpecWon:           mx.SpecWon.Value(),
		SpecWasted:        mx.SpecWasted.Value(),
	}
}

// Metrics returns the registry the runtime records into: the caller's
// Config.Metrics registry, or the private one backing Stats when none was
// attached. Serve it with metrics.Serve to expose /metrics and /statusz.
func (r *Runtime) Metrics() *metrics.Registry { return r.reg }

// CapacityFactor returns the live fraction of the runtime's nodes in
// [0, 1]: with a HeartbeatPolicy it counts nodes the failure detector holds
// Alive (suspect, dead and quarantined nodes contribute nothing), without
// one it counts nodes not explicitly killed. The scheduling layer
// (internal/sched) feeds this back into admission control, so quarantine
// lowers the admit rate before queues overflow.
func (r *Runtime) CapacityFactor() float64 {
	r.issueMu.Lock()
	defer r.issueMu.Unlock()
	c := r.healthCountsLocked()
	return float64(c.Alive) / float64(r.cfg.Nodes)
}

// ErrBusy marks a Recycle attempt while tasks were still outstanding.
var ErrBusy = errors.New("rt: tasks still outstanding")

// Recycle prepares a long-lived runtime for its next program: it prunes the
// completed-task bookkeeping a fence would otherwise walk, clears the
// profiler's span-identity map, and recycles the message transport's
// per-session state (sequence numbers, dedup sets) so a runtime reused
// across many scheduler jobs does not accumulate per-job state forever.
// The runtime must be idle — fence first; Recycle fails with ErrBusy when
// any issued task has not completed.
func (r *Runtime) Recycle() error {
	r.issueMu.Lock()
	defer r.issueMu.Unlock()
	for _, pt := range r.outstanding {
		if !pt.ev.Done() {
			return fmt.Errorf("%w: task %q launch %q point %v", ErrBusy, pt.name, pt.tag, pt.point)
		}
	}
	r.outstanding = r.outstanding[:0]
	if r.profIDs != nil {
		clear(r.profIDs)
	}
	if r.xp != nil {
		r.xp.Recycle()
	}
	r.jobTC = obs.TraceRef{}
	r.tcSeq = 0
	return nil
}

// SetTraceRef installs the span context whose children subsequent launch,
// point and fence spans are stamped with — the scheduler calls it with a
// per-attempt child of the job's root context before running the job
// body. The zero ref disables stamping (the default).
func (r *Runtime) SetTraceRef(tc obs.TraceRef) {
	r.issueMu.Lock()
	r.jobTC = tc
	r.tcSeq = 0
	r.issueMu.Unlock()
}

// nextLaunchTC derives the next launch's (or fence's) span context from
// the installed job context. Caller holds issueMu.
func (r *Runtime) nextLaunchTC() obs.TraceRef {
	if !r.jobTC.Valid() {
		return obs.TraceRef{}
	}
	r.tcSeq++
	return r.jobTC.Child(r.tcSeq)
}

// Reserved child indices under a launch context: the launch (issue) span
// carries the context itself; stage spans hang off it at fixed indices,
// and per-point contexts use pointChildKey (≥ 16).
const (
	tcLogical    = 1
	tcDistribute = 2
)

// Reserved child indices under a per-point context: the physical span
// carries the point context; execute/fault/retry/speculate children use
// these.
const (
	tcExecute    = 1
	tcFaultSkip  = 2
	tcRetryBase  = 0x10 // + attempt number
	tcSpecBackup = 0x41
	tcSpecLost   = 0x42
	tcSpecWon    = 0x43
)

// pointChildKey derives a stable per-point child index from the point's
// coordinates — a pure function, so concurrent replays of the same launch
// produce identical span identities without a counter. Keys below 16 are
// reserved for launch-level stage spans.
func pointChildKey(p domain.Point) uint64 {
	h := uint64(0x706f696e74) // "point"
	for i := 0; i < p.Dim; i++ {
		h = obs.Mix64(h ^ uint64(p.C[i]))
	}
	if h < 16 {
		h += 16
	}
	return h
}

// nowNS reads the runtime's metrics timebase: the profiler's clock when one
// is attached (so spans and histograms agree), the wall clock otherwise.
func (r *Runtime) nowNS() int64 {
	if p := r.cfg.Profile; p != nil {
		return p.Now()
	}
	return time.Since(r.mxEpoch).Nanoseconds()
}

// ErrShutdown marks a fence wait abandoned because the runtime was shut
// down while tasks were still outstanding. Errors returned by FenceTimeout
// and FenceContext match it with errors.Is.
var ErrShutdown = errors.New("rt: runtime shut down")

// Shutdown cancels the runtime's in-flight retry backoff waits and fence
// waits: a task sleeping in its backoff ladder wakes immediately and fails
// with its last error, and a goroutine blocked in FenceTimeout or
// FenceContext returns ErrShutdown, instead of holding the caller hostage
// for the rest of the ladder. Tasks already executing run to completion;
// heartbeat rounds (and thus quarantine/rejoin transitions) stop at the
// next issuance boundary. Idempotent and safe to race with an in-flight
// rejoin.
func (r *Runtime) Shutdown() {
	r.stopOnce.Do(func() { close(r.stop) })
}

// ExecuteIndex issues an index launch and returns its future map. The
// launch is analyzed, distributed and executed asynchronously; Wait on the
// future map (or a fence) to observe completion.
func (r *Runtime) ExecuteIndex(l *core.IndexLaunch) (*FutureMap, error) {
	r.issueMu.Lock()
	defer r.issueMu.Unlock()
	r.mx.LaunchCalls.Inc()

	if int(l.Task) >= len(r.tasks) {
		return nil, fmt.Errorf("rt: launch %q names unregistered task %d", l.Tag, l.Task)
	}

	prof := r.cfg.Profile
	timed := prof != nil || r.mxOn
	name := r.tasks[l.Task].name
	ltc := r.nextLaunchTC()
	var tLaunch, tLogical, logicalNS, distNS int64
	if timed {
		tLaunch = r.nowNS()
		tLogical = tLaunch
		r.profPhysNS = 0
	}

	useIndex := r.cfg.IndexLaunches
	if useIndex && r.cfg.VerifyLaunches && !r.replaying() && !r.bulkReplaying() {
		var tCheck int64
		if r.mxOn {
			tCheck = r.nowNS()
		}
		res := l.Verify(r.cfg.Checks)
		if r.mxOn {
			r.mx.CheckEval.Observe(r.nowNS() - tCheck)
		}
		r.mx.DynamicCheckEvals.Add(res.DynamicEvaluations)
		if !res.Safe {
			// Listing 3's else-branch: run the original task loop.
			r.mx.Fallbacks.Inc()
			useIndex = false
		}
	}
	if timed {
		// Logical stage: whole-launch analysis including the dynamic safety
		// check (near-zero duration when VerifyLaunches is off).
		logicalNS = r.nowNS() - tLogical
		if prof != nil {
			prof.SpanTC(ltc.Child(tcLogical), 0, obs.StageLogical, name, l.Tag, domain.Point{}, tLogical, tLogical+logicalNS)
		}
		if r.mxOn {
			r.mx.LatLogical.Observe(logicalNS)
		}
	}

	if useIndex {
		r.mx.IndexLaunched.Inc()
	} else {
		r.mx.Expanded.Inc()
	}

	// Distribution: compute the node for every point. With DCR the
	// sharding functor is evaluated per point (memoizable, no
	// communication); without DCR the slicing functor produces per-node
	// slices. Either way the real runtime ends with a point → node
	// assignment; the cost difference between the two paths is modeled in
	// internal/sim.
	var tDist int64
	if timed {
		tDist = r.nowNS()
	}
	assign := r.assignNodes(l.Domain, l.Tag, ltc.Child(tcDistribute))
	if timed {
		distNS = r.nowNS() - tDist
	}

	if r.bulkReplaying() {
		r.pendingBulkDeps = r.bulk.replayLaunchDeps(l.Task, int(l.Parallelism()))
	}
	r.pendingPointEvs = r.pendingPointEvs[:0]

	fm := newFutureMap()
	err := l.Each(func(pt core.PointTask) bool {
		prs := make([]PhysicalRegion, len(pt.Regions))
		for i, reg := range pt.Regions {
			req := l.Requirements[i]
			prs[i] = PhysicalRegion{Region: reg, Priv: req.Priv, RedOp: req.RedOp, Fields: req.Fields}
		}
		var tShard int64
		if timed {
			tShard = r.nowNS()
		}
		node := r.faultCheck(l.Domain, pt.Point, assign(pt.Point))
		if timed {
			distNS += r.nowNS() - tShard
		}
		fut := r.issuePoint(l.Task, l.Tag, pt.Point, node, prs, l.ArgsAt(pt.Point), ltc)
		fm.add(pt.Point, fut)
		return true
	})
	if err != nil {
		return nil, err
	}
	switch {
	case r.trace != nil:
		r.trace.noteLaunch(len(fm.futures))
	case r.bulkCapturing():
		r.bulk.captureLaunchDone(l.Task, len(fm.futures))
	case r.bulkReplaying():
		r.bulk.replayLaunchDone(r.pendingPointEvs)
		r.pendingBulkDeps = nil
	}
	fm.seal()
	if timed {
		// Distribution span: sharding/slicing time aggregated over the
		// launch; issue span: the residual launch bookkeeping, so the four
		// issuance-side stages partition the time spent under issueMu.
		end := r.nowNS()
		resid := (end - tLaunch) - logicalNS - distNS - r.profPhysNS
		if resid < 0 {
			resid = 0
		}
		if prof != nil {
			prof.SpanTC(ltc.Child(tcDistribute), 0, obs.StageDistribute, name, l.Tag, domain.Point{}, tDist, tDist+distNS)
			prof.SpanTC(ltc, 0, obs.StageIssue, name, l.Tag, domain.Point{}, tLaunch, tLaunch+resid)
		}
		if r.mxOn {
			r.mx.LatDistribute.Observe(distNS)
			r.mx.LatIssue.Observe(resid)
		}
	}
	return fm, nil
}

func (r *Runtime) bulkCapturing() bool { return r.bulk != nil && r.bulk.mode == traceCapturing }
func (r *Runtime) bulkReplaying() bool { return r.bulk != nil && r.bulk.mode == traceReplaying }

// SingleReq is a region requirement of a single-task launch: a concrete
// region rather than a ⟨partition, functor⟩ pair.
type SingleReq struct {
	Region *region.Region
	Priv   privilege.Privilege
	RedOp  privilege.OpID
	Fields []region.FieldID
}

// ExecuteSingle issues one task. The task is placed on the node selected by
// the sharding functor for a singleton domain.
func (r *Runtime) ExecuteSingle(tag string, task core.TaskID, reqs []SingleReq, args []byte) (*Future, error) {
	r.issueMu.Lock()
	defer r.issueMu.Unlock()
	r.mx.SingleCalls.Inc()
	if int(task) >= len(r.tasks) {
		return nil, fmt.Errorf("rt: single launch %q names unregistered task %d", tag, task)
	}
	prof := r.cfg.Profile
	timed := prof != nil || r.mxOn
	name := r.tasks[task].name
	ltc := r.nextLaunchTC()
	var tLaunch, distNS int64
	if timed {
		tLaunch = r.nowNS()
		r.profPhysNS = 0
	}
	prs := make([]PhysicalRegion, len(reqs))
	for i, req := range reqs {
		if req.Region == nil {
			return nil, fmt.Errorf("rt: single launch %q requirement %d has nil region", tag, i)
		}
		prs[i] = PhysicalRegion{Region: req.Region, Priv: req.Priv, RedOp: req.RedOp, Fields: req.Fields}
	}
	p := domain.Pt1(0)
	var tDist int64
	if timed {
		tDist = r.nowNS()
	}
	node := clampNode(r.mapper.ShardPoint(domain.Range1(0, 0), p, r.cfg.Nodes), r.cfg.Nodes)
	node = r.faultCheck(domain.Range1(0, 0), p, node)
	if timed {
		distNS = r.nowNS() - tDist
	}
	if r.bulkReplaying() {
		r.pendingBulkDeps = r.bulk.replayLaunchDeps(task, 1)
		r.pendingPointEvs = r.pendingPointEvs[:0]
	}
	fut := r.issuePoint(task, tag, p, node, prs, args, ltc)
	switch {
	case r.trace != nil:
		r.trace.noteLaunch(1)
	case r.bulkCapturing():
		r.bulk.captureLaunchDone(task, 1)
	case r.bulkReplaying():
		r.bulk.replayLaunchDone(r.pendingPointEvs)
		r.pendingBulkDeps = nil
	}
	if timed {
		end := r.nowNS()
		resid := (end - tLaunch) - distNS - r.profPhysNS
		if resid < 0 {
			resid = 0
		}
		if prof != nil {
			prof.SpanTC(ltc.Child(tcDistribute), 0, obs.StageDistribute, name, tag, domain.Point{}, tDist, tDist+distNS)
			prof.SpanTC(ltc, 0, obs.StageIssue, name, tag, domain.Point{}, tLaunch, tLaunch+resid)
		}
		if r.mxOn {
			r.mx.LatDistribute.Observe(distNS)
			r.mx.LatIssue.Observe(resid)
		}
	}
	return fut, nil
}

// assignNodes returns the point → node assignment for a launch domain. On
// the centralized path the slices are first shipped from node 0 through the
// message transport's broadcast tree; the assignment is built from the
// delivered slices, reassembled into the slicing functor's original order.
func (r *Runtime) assignNodes(d domain.Domain, tag string, tc obs.TraceRef) func(domain.Point) int {
	if r.cfg.DCR {
		return func(p domain.Point) int {
			n := r.mapper.ShardPoint(d, p, r.cfg.Nodes)
			return clampNode(n, r.cfg.Nodes)
		}
	}
	slices := r.shipSlices(tag, r.mapper.Slice(d, r.cfg.Nodes), tc)
	return func(p domain.Point) int {
		for _, s := range slices {
			if s.Domain.Contains(p) {
				return clampNode(s.Node, r.cfg.Nodes)
			}
		}
		return 0
	}
}

func clampNode(n, nodes int) int {
	if n < 0 {
		return 0
	}
	if n >= nodes {
		return nodes - 1
	}
	return n
}

// issuePoint performs per-point dependence analysis (or trace replay) and
// hands the task to the executor. Caller holds issueMu.
func (r *Runtime) issuePoint(task core.TaskID, tag string, p domain.Point, node int,
	prs []PhysicalRegion, args []byte, ltc obs.TraceRef) *Future {

	fut := newFuture()
	ev := fut.ev
	prof := r.cfg.Profile
	timed := prof != nil || r.mxOn
	name := r.tasks[task].name
	ptc := ltc.Child(pointChildKey(p))

	var deps []*Event
	switch {
	case r.replaying():
		deps = r.trace.replayDeps(task, p, ev)
		r.mx.AnalysisSkipped.Inc()
	case r.bulkReplaying():
		deps = r.pendingBulkDeps
		r.pendingPointEvs = append(r.pendingPointEvs, ev)
		r.mx.AnalysisSkipped.Inc()
	default:
		var tPhys int64
		if timed {
			tPhys = r.nowNS()
		}
		depSet := map[*Event]struct{}{}
		for _, pr := range prs {
			ivs := pr.Region.Intervals()
			for _, f := range pr.Fields {
				for _, d := range r.vm.access(pr.Region.Tree.ID, f, ivs, pr.Priv, pr.RedOp, ev) {
					depSet[d] = struct{}{}
				}
			}
		}
		deps = make([]*Event, 0, len(depSet))
		for d := range depSet {
			deps = append(deps, d)
		}
		if r.capturing() {
			r.trace.recordOp(task, p, ev, deps, prs)
		}
		if r.bulkCapturing() {
			for _, d := range deps {
				r.bulk.captureDep(d)
			}
			r.bulk.capturePoint(ev, prs)
		}
		if timed {
			// Physical stage, attributed to the owning node as in DCR:
			// each node analyzes its local points.
			tEnd := r.nowNS()
			r.profPhysNS += tEnd - tPhys
			if prof != nil {
				prof.SpanTC(ptc, node, obs.StagePhysical, name, tag, p, tPhys, tEnd)
			}
			if r.mxOn {
				r.mx.LatPhysical.Observe(tEnd - tPhys)
			}
		}
	}

	// Span identity and dependence edges for the critical-path graph.
	var spanID int64
	if prof != nil {
		spanID = prof.NextID()
		for _, d := range deps {
			if from, ok := r.profIDs[d]; ok {
				prof.Edge(from, spanID)
			}
		}
		r.profNote(ev, spanID)
	}

	r.outstanding = append(r.outstanding, pendingTask{ev: ev, name: name, tag: tag, point: p})
	r.pruneOutstanding()

	tr := &taskRun{
		fn: r.tasks[task].fn, task: task, name: name, tag: tag, point: p,
		args: args, prs: prs, fut: fut, spanID: spanID, timed: timed, tc: ptc,
	}
	skipOnFailure := r.cfg.OnUpstreamFailure == SkipDependents
	r.mx.InflightTasks.Add(1)
	go func() {
		defer r.mx.InflightTasks.Add(-1)
		if cause := WaitAllErr(deps); cause != nil && skipOnFailure {
			// A precondition is poisoned: skip the body and cascade the
			// failure downstream through this task's own event.
			r.mx.TasksSkipped.Inc()
			if prof != nil {
				prof.MarkTC(ptc.Child(tcFaultSkip), node, obs.StageFault, name, tag, p, prof.Now())
			}
			fut.complete(nil, &TaskError{
				Task: name, Tag: tag, Point: p, Node: node,
				Err: fmt.Errorf("%w: %w", ErrUpstreamFailed, cause),
			})
			return
		}
		if r.specOn {
			// Arm the straggler watchdog only once the task is runnable:
			// dependence waits are ordering, not straggling.
			tr.spec = &specState{cancel: make(chan struct{})}
			r.armSpeculation(tr, node)
		}
		r.runAttempt(tr, node, false)
	}()
	return fut
}

// profIDCap bounds the event → span-ID map; beyond it, entries for
// completed events are dropped. A completed event can still be a future
// dependence (the version map keeps last writers), in which case the edge
// is lost — harmless for critical-path purposes, since a long-completed
// dependence never bound a start.
const profIDCap = 1 << 16

// profNote registers ev's span ID for dependence-edge recording. Caller
// holds issueMu.
func (r *Runtime) profNote(ev *Event, id int64) {
	if len(r.profIDs) > profIDCap {
		for e := range r.profIDs {
			if e.Done() {
				delete(r.profIDs, e)
			}
		}
	}
	r.profIDs[ev] = id
}

// sleepBackoff waits out one retry backoff, returning false if Shutdown
// cancelled the wait.
func (r *Runtime) sleepBackoff(d time.Duration) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-r.stop:
		return false
	}
}

// panicError carries a recovered task-body panic out of runBody.
type panicError struct{ value any }

func (e *panicError) Error() string { return fmt.Sprintf("panic: %v", e.value) }

// runBody executes one attempt of a task body, converting a panic into an
// error so a faulty task cannot take down the process.
func (r *Runtime) runBody(fn TaskFn, ctx *Context) (val []byte, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			r.mx.Panics.Inc()
			err = &panicError{value: rec}
		}
	}()
	return fn(ctx)
}

func (r *Runtime) pruneOutstanding() {
	if len(r.outstanding) < 4096 {
		return
	}
	kept := r.outstanding[:0]
	for _, pt := range r.outstanding {
		if !pt.ev.Done() {
			kept = append(kept, pt)
		}
	}
	r.outstanding = kept
}

// takePending atomically drains the outstanding task list.
func (r *Runtime) takePending() []pendingTask {
	r.issueMu.Lock()
	waiting := make([]pendingTask, len(r.outstanding))
	copy(waiting, r.outstanding)
	r.outstanding = r.outstanding[:0]
	r.issueMu.Unlock()
	return waiting
}

// Fence blocks until every previously issued task has completed — an
// execution fence in Legion terms. Failed tasks are treated as completed;
// use FenceErr to observe their errors, or FenceTimeout / FenceContext to
// bound the wait on a hung task.
func (r *Runtime) Fence() {
	prof := r.cfg.Profile
	timed := prof != nil || r.mxOn
	var t0 int64
	if timed {
		t0 = r.nowNS()
	}
	for _, pt := range r.takePending() {
		pt.ev.Wait()
	}
	if timed {
		r.fenceDone(t0)
	}
}

// fenceDone records one completed fence wait that started at t0.
func (r *Runtime) fenceDone(t0 int64) {
	end := r.nowNS()
	if prof := r.cfg.Profile; prof != nil {
		r.issueMu.Lock()
		ftc := r.nextLaunchTC()
		r.issueMu.Unlock()
		prof.SpanTC(ftc, 0, obs.StageFence, "", "fence", domain.Point{}, t0, end)
	}
	if r.mxOn {
		r.mx.FenceWait.Observe(end - t0)
	}
}

// FenceErr blocks like Fence and returns the joined errors of every task
// that failed or was skipped since the previous fence, nil if all
// succeeded.
func (r *Runtime) FenceErr() error {
	prof := r.cfg.Profile
	timed := prof != nil || r.mxOn
	var t0 int64
	if timed {
		t0 = r.nowNS()
	}
	var errs []error
	for _, pt := range r.takePending() {
		if err := pt.ev.WaitErr(); err != nil {
			errs = append(errs, err)
		}
	}
	if timed {
		r.fenceDone(t0)
	}
	return r.wrapLiveness(errors.Join(errs...))
}

// wrapLiveness annotates a non-nil fence error with the node-liveness
// snapshot when some node is degraded, so a failure report says at a
// glance whether the cluster was healthy. Wrapping preserves errors.Is/As.
func (r *Runtime) wrapLiveness(err error) error {
	if err == nil {
		return nil
	}
	c := r.HealthCounts()
	if c.Suspect == 0 && c.Dead == 0 && c.Quarantined == 0 {
		return err
	}
	return fmt.Errorf("%w (%s)", err, r.livenessSummary())
}

// FenceTimeout is FenceErr with a deadline: if some task has not completed
// within d, it returns an error naming the unfinished tasks (first by task
// name and point) instead of blocking forever. Unfinished tasks remain
// outstanding, so a later fence still waits for them.
func (r *Runtime) FenceTimeout(d time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	return r.FenceContext(ctx)
}

// FenceContext is FenceErr bounded by a context. On cancellation the
// unfinished tasks are put back on the outstanding list and a descriptive
// error naming them — and snapshotting node liveness — is returned. A
// Shutdown during the wait abandons it the same way, with ErrShutdown as
// the cause instead of the context error.
func (r *Runtime) FenceContext(ctx context.Context) error {
	if r.cfg.Profile != nil || r.mxOn {
		t0 := r.nowNS()
		defer r.fenceDone(t0)
	}
	// Bound the waits by Shutdown too: a runtime being torn down must not
	// hold fence callers for the full deadline.
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	go func() {
		select {
		case <-r.stop:
			cancel()
		case <-wctx.Done():
		}
	}()
	pend := r.takePending()
	var errs []error
	for i, pt := range pend {
		if waitErr := pt.ev.WaitContext(wctx); waitErr != nil {
			if pt.ev.Done() {
				// The task completed (the wait may have raced with the
				// cancellation); record its poison error, if any.
				if err := pt.ev.Err(); err != nil {
					errs = append(errs, err)
				}
				continue
			}
			unfinished := pend[i:]
			r.issueMu.Lock()
			r.outstanding = append(r.outstanding, unfinished...)
			r.issueMu.Unlock()
			cause := ctx.Err()
			if cause == nil {
				// The parent context is live: the wait was abandoned by
				// Shutdown, not by the caller's deadline.
				cause = ErrShutdown
			}
			first := unfinished[0]
			return fmt.Errorf("rt: fence: %w; %d task(s) unfinished, first: task %q launch %q point %v; %s",
				cause, len(unfinished), first.name, first.tag, first.point, r.livenessSummary())
		}
	}
	return r.wrapLiveness(errors.Join(errs...))
}

func (r *Runtime) taskName(id core.TaskID) string {
	if int(id) < len(r.tasks) {
		return r.tasks[id].name
	}
	return fmt.Sprintf("task%d", id)
}
