package sim

import (
	"indexlaunch/internal/domain"
	"indexlaunch/internal/obs"
)

// The simulator's profiling adapter: the cost model's per-node charges are
// decomposed into the same pipeline-stage spans internal/rt records, on the
// simulated clock instead of wall time, so real and simulated executions
// are exported and analyzed with one tool. Decompositions reuse the exact
// cost components the engine charges; the engine's arithmetic is untouched
// when profiling is off (and the charges themselves never depend on the
// recorder), so enabling profiling cannot perturb a simulated makespan.

// profNS converts simulated seconds to profile-clock nanoseconds.
func profNS(sec float64) int64 { return int64(sec * 1e9) }

// profSeg emits one stage segment of dur seconds starting at start seconds
// of simulated time, attributed to the launch it belongs to: a stage span
// when a recorder is attached, a stage-latency histogram observation when a
// metrics pipeline is. Zero-duration segments are suppressed to keep
// profiles at cost-model scale readable.
func profSeg(em *emitter, node int, st obs.Stage, launch string, start, dur float64) float64 {
	if dur > 0 {
		if em.rec != nil {
			em.rec.SpanTC(em.segTC(node, st), node, st, launch, launch,
				domain.Point{}, profNS(start), profNS(start+dur))
		}
		em.stageHist(st).Observe(profNS(dur))
	}
	return start + dur
}

// profDCRNode mirrors runDCR's per-node charge c as stage segments laid out
// back to back from t0 = rtFree[node]. The segment durations are the same
// cost components runDCR sums into c, so they partition [t0, t0+c].
func profDCRNode(em *emitter, cfg Config, l Launch, replay bool,
	phys, checkCost, local float64, node int, t0 float64) {

	cost := cfg.Cost
	t := t0
	switch {
	case cfg.IDX && replay && cfg.BulkTracing:
		profSeg(em, node, obs.StageIssue, l.Name, t, cost.LaunchIssue)
	case cfg.IDX && replay:
		t = profSeg(em, node, obs.StageIssue, l.Name, t, cost.LaunchIssue)
		profSeg(em, node, obs.StageReplay, l.Name, t, local*cost.ReplayPerTask)
	case cfg.IDX:
		t = profSeg(em, node, obs.StageIssue, l.Name, t, cost.LaunchIssue)
		t = profSeg(em, node, obs.StageLogical, l.Name, t, cost.LogicalLaunch+checkCost)
		t = profSeg(em, node, obs.StageDistribute, l.Name, t, local*cost.ShardPerLocalTask)
		profSeg(em, node, obs.StagePhysical, l.Name, t, local*phys)
	case replay:
		if l.PerTaskReplay > 0 {
			// Application-overridden per-task cost: no decomposition known.
			profSeg(em, node, obs.StageReplay, l.Name, t, float64(l.Points)*l.PerTaskReplay)
			return
		}
		t = profSeg(em, node, obs.StageIssue, l.Name, t, float64(l.Points)*cost.TaskIssue)
		profSeg(em, node, obs.StageReplay, l.Name, t, float64(l.Points)*cost.ReplayPerTask)
	default:
		if l.PerTaskIssue > 0 {
			t = profSeg(em, node, obs.StageIssue, l.Name, t, float64(l.Points)*l.PerTaskIssue)
		} else {
			t = profSeg(em, node, obs.StageIssue, l.Name, t, float64(l.Points)*cost.TaskIssue)
			t = profSeg(em, node, obs.StageLogical, l.Name, t, float64(l.Points)*cost.LogicalTask)
		}
		profSeg(em, node, obs.StagePhysical, l.Name, t, local*phys)
	}
}

// profCentralIssue mirrors the node-0 charge of runCentralized's per-task
// path: launch build + expansion (distribution work), per-task issuance and
// logical analysis (or replay), the centralized per-task burden and sends
// (distribution), and the inline physical analysis of node-0-local points.
func profCentralIssue(em *emitter, cfg Config, l Launch, replay bool,
	phys float64, local0, remote int, t0 float64) {

	cost := cfg.Cost
	points := float64(l.Points)
	t := t0
	var issue, logical, replayNS float64
	switch {
	case replay && l.PerTaskReplay > 0:
		replayNS = points * l.PerTaskReplay
	case replay:
		issue = points * cost.TaskIssue
		replayNS = points * cost.ReplayPerTask
	case l.PerTaskIssue > 0:
		issue = points * l.PerTaskIssue
	default:
		issue = points * cost.TaskIssue
		logical = points * cost.LogicalTask
	}
	if cfg.IDX {
		issue += cost.LaunchIssue
	}
	dist := points * cost.CentralPerTask
	if cfg.IDX {
		dist += points * cost.ExpandPerTask
	}
	dist += float64(remote) * cost.SendPerTask
	t = profSeg(em, 0, obs.StageIssue, l.Name, t, issue)
	t = profSeg(em, 0, obs.StageLogical, l.Name, t, logical)
	t = profSeg(em, 0, obs.StageReplay, l.Name, t, replayNS)
	t = profSeg(em, 0, obs.StageDistribute, l.Name, t, dist)
	if !replay {
		profSeg(em, 0, obs.StagePhysical, l.Name, t, float64(local0)*phys)
	}
}
