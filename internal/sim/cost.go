// Package sim is a discrete-event model of the runtime pipeline of paper §5
// executing on a simulated cluster (internal/machine). It replays an
// application's launch stream under any combination of {DCR, index
// launches, tracing, dynamic checks} and produces the makespan from which
// the scaling figures are regenerated.
//
// The model charges explicit costs to three resource classes:
//
//   - each node's runtime/analysis core (issuance, logical analysis,
//     distribution handling, physical analysis, dynamic checks),
//   - each node's accelerator processors (task execution),
//   - the network (slice broadcast, per-task sends, halo traffic).
//
// What differs between configurations is *where* those costs are paid:
//
//   - DCR + IDX: every node issues one O(1) launch, shards it with a pure
//     sharding functor, and analyzes only its local points.
//   - DCR + no IDX: every node issues all |D| tasks (control replication
//     replays the whole program on every node) — the per-node O(|D|) term
//     that caps scaling.
//   - no DCR + IDX: node 0 issues one launch and broadcasts fixed-size
//     slices through an O(log N) tree; destinations expand and analyze
//     locally. With tracing enabled, the launch is expanded *before*
//     distribution (tracing operates on individual tasks), reproducing the
//     interference the paper observes in Figures 4–5.
//   - no DCR + no IDX: node 0 issues, analyzes and serially sends every
//     task — the centralized bottleneck.
package sim

import (
	"indexlaunch/internal/machine"
	"indexlaunch/internal/metrics"
	"indexlaunch/internal/obs"
)

// CostModel holds the runtime overhead constants, in seconds. Defaults are
// calibrated to Legion-like magnitudes (a few microseconds per runtime
// operation; see paper §6.3: "approximately the same as the overhead of
// launching a task in Regent/Legion at these scales" ≈ 3 ms for 1e6 tasks).
type CostModel struct {
	// LaunchIssue is the cost of issuing one index launch (one runtime
	// call, O(1) regardless of |D|).
	LaunchIssue float64
	// TaskIssue is the cost of issuing one individual task.
	TaskIssue float64
	// LogicalLaunch is the whole-partition logical analysis of one index
	// launch.
	LogicalLaunch float64
	// LogicalTask is the per-task logical analysis when tasks are issued
	// individually.
	LogicalTask float64
	// ShardPerLocalTask is the DCR distribution cost per local point
	// (memoized sharding-functor evaluation + local enqueue).
	ShardPerLocalTask float64
	// ExpandPerTask is the cost of expanding one point task out of a slice
	// at its destination (or at node 0 when tracing forces early
	// expansion).
	ExpandPerTask float64
	// SendPerTask is node 0's serialization cost to ship one individual
	// task in centralized mode.
	SendPerTask float64
	// CentralPerTask is the additional per-task burden of the single
	// centralized context in non-DCR mode: coherence updates, mapping and
	// data-movement orchestration that DCR distributes but the original
	// centralized design funnels through one node. It is paid whether or
	// not the task's analysis was memoized by tracing.
	CentralPerTask float64
	// SliceHandling is the per-hop handling cost of one slice in the
	// broadcast tree.
	SliceHandling float64
	// HopLatency is the message-transport overhead per broadcast-tree hop
	// (sequence bookkeeping and ack turnaround), on top of the network
	// latency and SliceHandling — the cost-domain mirror of
	// internal/xport's reliable hop.
	HopLatency float64
	// RetransmitTimeout is the delay a hop pays when its transmission is
	// dropped (FaultModel.DropEveryHop): the ack timeout that elapses
	// before the re-send.
	RetransmitTimeout float64
	// PhysBase + PhysPerLog·log2(|P|) is the physical (per-task) dependence
	// analysis cost, the bounding-volume-hierarchy query of §5.
	PhysBase   float64
	PhysPerLog float64
	// CheckPerPointArg is the dynamic safety check cost per launch-domain
	// point per argument (§6.3 measures ~1–3 ns/point).
	CheckPerPointArg float64
	// ReplayPerTask is the per-task analysis cost under trace replay.
	ReplayPerTask float64
	// GPULaunch is the fixed execution overhead per task (kernel launch).
	GPULaunch float64
	// StageLatency·log2(N+1) is charged once per launch before its tasks
	// become ready: the mapper calls, metadata round-trips and event
	// propagation that every stage pays and that grow slowly with machine
	// size.
	StageLatency float64
	// RetryPenalty is the scheduling overhead of re-executing a failed
	// point task (failure detection + requeue), charged per retry on top
	// of the repeated kernel launch and compute time.
	RetryPenalty float64
	// HeartbeatPeriod is the period, in simulated seconds, of the
	// self-healing failure detector's heartbeat rounds — the cost-domain
	// mirror of rt's HeartbeatPolicy. Each round probes every non-observer
	// node (FaultModel.Outages silence probes) and drives the same
	// internal/health detector the real runtime uses, so suspect,
	// quarantine and rejoin transitions appear with identical semantics.
	// Probe traffic is charged off the critical path: rounds × (N−1)
	// probes, two HopLatency each. 0 disables detection.
	HeartbeatPeriod float64
	// SpeculationQuantile enables straggler speculation when > 0 —
	// the cost-domain mirror of rt's SpeculationPolicy. The cost model
	// knows each launch's nominal task time exactly, so the adaptive
	// quantile threshold collapses to nominal × health.DefaultSpecMultiplier:
	// an injected straggler (FaultModel.StragglerEvery) gets a backup
	// launch on an assumed-idle healthy node once the threshold elapses,
	// and the earlier completion wins, exactly one attempt's work being
	// discarded.
	SpeculationQuantile float64
}

// DefaultCosts returns the calibrated cost model used by the experiments.
func DefaultCosts() CostModel {
	return CostModel{
		LaunchIssue:       5e-6,
		TaskIssue:         6e-6,
		LogicalLaunch:     10e-6,
		LogicalTask:       6e-6,
		ShardPerLocalTask: 0.7e-6,
		ExpandPerTask:     1.5e-6,
		SendPerTask:       4e-6,
		CentralPerTask:    150e-6,
		SliceHandling:     2e-6,
		HopLatency:        0.5e-6,
		RetransmitTimeout: 120e-6,
		PhysBase:          2e-6,
		PhysPerLog:        0.5e-6,
		CheckPerPointArg:  2.5e-9,
		ReplayPerTask:     1.2e-6,
		GPULaunch:         8e-6,
		StageLatency:      12e-6,
		RetryPenalty:      25e-6,
	}
}

// FaultModel injects deterministic task failures into the execution stage,
// mirroring internal/rt's retry machinery in the cost domain: every
// RetryEvery-th point task (counted runtime-wide in issuance order) fails
// once and re-executes on its processor, paying RetryPenalty plus a second
// kernel launch and compute. DropEveryHop does the same for the message
// transport: every DropEveryHop-th broadcast-tree hop transmission (counted
// runtime-wide) is dropped and re-sent after RetransmitTimeout, mirroring
// internal/xport's chaos injection. Zeros disable injection.
type FaultModel struct {
	RetryEvery   int64
	DropEveryHop int64
	// StragglerEvery makes every StragglerEvery-th point task (counted
	// runtime-wide in issuance order) run StragglerFactor× slower than
	// nominal — the straggler injection CostModel.SpeculationQuantile
	// speculates against. Zero (or a factor <= 1) disables it.
	StragglerEvery  int64
	StragglerFactor float64
	// Outages silence nodes' heartbeat probes for windows of detector
	// rounds, mirroring chaos partitions starving rt's heartbeats; they
	// only matter when CostModel.HeartbeatPeriod enables the detector.
	Outages []Outage
}

// Outage silences one node's heartbeat probes for a window of detector
// rounds: probes of Node fail for rounds [FromRound, FromRound+Rounds).
type Outage struct {
	Node      int
	FromRound int64
	Rounds    int64
}

// covers reports whether the outage silences node during round.
func (o Outage) covers(node int, round int64) bool {
	return o.Node == node && round >= o.FromRound && round < o.FromRound+o.Rounds
}

// Config selects one simulated execution configuration — one curve of one
// figure.
type Config struct {
	Machine machine.Spec
	Cost    CostModel
	// DCR enables dynamic control replication.
	DCR bool
	// IDX enables index launches.
	IDX bool
	// Tracing enables Legion-style tracing (capture on the first body
	// iteration, replay on the rest).
	Tracing bool
	// BulkTracing models the paper's future work: tracing at launch
	// granularity. With it, tracing no longer forces index launches to
	// expand before centralized distribution, and DCR replays cost O(1)
	// per launch instead of O(local tasks).
	BulkTracing bool
	// DynChecks enables the dynamic projection-functor checks for launches
	// flagged NonTrivialFunctor.
	DynChecks bool
	// Faults optionally injects deterministic task re-execution.
	Faults FaultModel
	// Profile attaches an observability recorder (internal/obs): the cost
	// model's per-node charges are decomposed into the same pipeline-stage
	// spans internal/rt records, on the simulated clock, so simulated and
	// real runs are viewed with one tool. Nil disables profiling; the
	// simulated timings are identical either way.
	Profile *obs.Recorder
	// Metrics attaches a live metrics registry (internal/metrics): the cost
	// model's charges are recorded as the same counter and histogram
	// families internal/rt maintains, on the simulated clock — the metrics
	// face of the rt/sim parity guarantee. Nil disables metrics; the
	// simulated timings are identical either way.
	Metrics *metrics.Registry
	// TraceSeed, when non-zero and a Profile is attached, stamps every
	// recorded span with a trace context rooted at NewTraceRef(TraceSeed):
	// launch i's spans hang off root.Child(i+1), mirroring the span tree an
	// rt run of the same workload produces — the tracing face of the rt/sim
	// parity guarantee. 0 records untraced spans as before.
	TraceSeed uint64
}

// Label renders the configuration the way the paper's legends do.
func (c Config) Label() string {
	s := "No DCR"
	if c.DCR {
		s = "DCR"
	}
	if c.IDX {
		return s + ", IDX"
	}
	return s + ", No IDX"
}
