package sim

import "testing"

// TestBulkTracingResolvesCentralizedAnomaly verifies the future-work claim:
// with launch-granularity tracing, No-DCR + IDX recovers the compact
// distribution path and beats No-DCR + No-IDX even with tracing enabled —
// the Figure 4/5 anomaly disappears.
func TestBulkTracingResolvesCentralizedAnomaly(t *testing.T) {
	const n = 256
	prog := flatProgram(n, 1e-3, 10)
	run := func(idx, bulk bool) float64 {
		cfg := simpleConfig(n, false, idx)
		cfg.Tracing = true
		cfg.BulkTracing = bulk
		res, err := Run(cfg, prog)
		if err != nil {
			t.Fatal(err)
		}
		return res.MakespanSec
	}
	// Standard tracing: IDX is (slightly) worse — the anomaly.
	if idx, noIdx := run(true, false), run(false, false); idx <= noIdx {
		t.Errorf("standard tracing: IDX (%.5f) should not beat No-IDX (%.5f)", idx, noIdx)
	}
	// Bulk tracing: IDX wins decisively.
	idx, noIdx := run(true, true), run(false, true)
	if idx >= noIdx {
		t.Errorf("bulk tracing: IDX (%.5f) must beat No-IDX (%.5f)", idx, noIdx)
	}
	if noIdx/idx < 2 {
		t.Errorf("bulk tracing should restore the compact-path advantage: ratio %.2f", noIdx/idx)
	}
}

// TestBulkTracingReducesDCRReplayCost verifies that DCR replays drop from
// O(local tasks) to O(1) runtime-core work per launch.
func TestBulkTracingReducesDCRReplayCost(t *testing.T) {
	const n = 128
	prog := flatProgram(n, 1e-4, 20)
	run := func(bulk bool) Result {
		cfg := simpleConfig(n, true, true)
		cfg.Tracing = true
		cfg.BulkTracing = bulk
		res, err := Run(cfg, prog)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	std := run(false)
	bulk := run(true)
	if bulk.RuntimeBusySec >= std.RuntimeBusySec {
		t.Errorf("bulk tracing runtime busy %.6f should be below standard %.6f",
			bulk.RuntimeBusySec, std.RuntimeBusySec)
	}
}
