package sim

// Program is a simulated application: a prologue, a body executed for a
// number of iterations (the unit of tracing), and an epilogue. Launches
// within the body reference each other's tasks through relative dependence
// specs, which work across iteration boundaries once the stream is
// unrolled.
type Program struct {
	Name       string
	Prologue   []Launch
	Body       []Launch
	Iterations int
	Epilogue   []Launch
}

// Launch describes one (index) launch of the simulated program.
type Launch struct {
	// Name identifies the launch for diagnostics.
	Name string
	// Points is |D|, the number of point tasks.
	Points int
	// ComputeSec is the execution time of one point task.
	ComputeSec float64
	// CommBytes is the data each point task must receive from each of its
	// off-node dependencies before it can start (halo traffic).
	CommBytes float64
	// Args is the number of region requirements (multiplies the dynamic
	// check cost).
	Args int
	// NonTrivialFunctor marks launches whose projection functors the
	// static analysis cannot resolve; with Config.DynChecks they pay the
	// dynamic check at issuance.
	NonTrivialFunctor bool
	// Deps lists cross-launch dependence patterns.
	Deps []DepSpec
	// Owner optionally overrides the block point → node placement (e.g.
	// sweep wavefronts); nil selects block placement.
	Owner func(point, nodes int) int
	// SubregionCount is |P|, the partition size entering the log-factor of
	// physical analysis; 0 defaults to Points.
	SubregionCount int
	// PerTaskIssue and PerTaskReplay override the cost model's per-task
	// issuance+analysis cost on the no-IDX path (capture and trace-replay
	// respectively). The cost is application-dependent: unstructured
	// region requirements (circuit ghost regions) cost far more per task
	// than structured tiles, and tracing memoizes structured analysis
	// almost completely. Zero selects the cost-model defaults.
	PerTaskIssue, PerTaskReplay float64
}

func (l Launch) perTaskIssue(c CostModel) float64 {
	if l.PerTaskIssue > 0 {
		return l.PerTaskIssue
	}
	return c.TaskIssue + c.LogicalTask
}

func (l Launch) perTaskReplay(c CostModel) float64 {
	if l.PerTaskReplay > 0 {
		return l.PerTaskReplay
	}
	return c.TaskIssue + c.ReplayPerTask
}

// DepSpec says that point p of this launch depends on points Map(p) of the
// launch Back positions earlier in the unrolled stream. Dependencies that
// reach before the beginning of the stream are ignored.
type DepSpec struct {
	// Back is the distance in launches (1 = immediately preceding launch).
	Back int
	// Map returns the dependency points; nil means same-point dependence.
	Map func(p int) []int
	// Barrier makes every point depend on every point of the target
	// launch, regardless of Map.
	Barrier bool
}

// BarrierOn returns the DepSpec that barriers on the launch back positions
// earlier.
func BarrierOn(back int) DepSpec { return DepSpec{Back: back, Barrier: true} }

// SamePoint is the DepSpec mapping each point to the same point of the
// previous launch.
func SamePoint(back int) DepSpec {
	return DepSpec{Back: back, Map: nil}
}

// Neighbors1D maps point p to {p-r .. p+r} of a launch back positions
// earlier, clamped to [0, points); the halo-exchange pattern.
func Neighbors1D(back, radius, points int) DepSpec {
	return DepSpec{Back: back, Map: func(p int) []int {
		lo, hi := p-radius, p+radius
		if lo < 0 {
			lo = 0
		}
		if hi > points-1 {
			hi = points - 1
		}
		out := make([]int, 0, hi-lo+1)
		for q := lo; q <= hi; q++ {
			out = append(out, q)
		}
		return out
	}}
}

// All maps every point to every point of the earlier launch — a full
// barrier such as a global reduction.
func All(back, points int) DepSpec {
	all := make([]int, points)
	for i := range all {
		all[i] = i
	}
	return DepSpec{Back: back, Map: func(int) []int { return all }}
}

// unroll flattens the program into a single launch stream.
func (p Program) unroll() ([]Launch, []bool) {
	var stream []Launch
	var inBody []bool
	stream = append(stream, p.Prologue...)
	for range p.Prologue {
		inBody = append(inBody, false)
	}
	for i := 0; i < p.Iterations; i++ {
		stream = append(stream, p.Body...)
		for range p.Body {
			inBody = append(inBody, true)
		}
	}
	stream = append(stream, p.Epilogue...)
	for range p.Epilogue {
		inBody = append(inBody, false)
	}
	return stream, inBody
}
