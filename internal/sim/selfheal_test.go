package sim

import (
	"testing"
)

// Speculation must measurably cut the makespan of a straggler-afflicted
// run: the backup finishes at threshold + nominal, well before a 10×
// straggler would.
func TestSpeculationCutsMakespan(t *testing.T) {
	prog := flatProgram(64, 1e-3, 4)
	cfg := simpleConfig(8, true, true)
	cfg.Faults = FaultModel{StragglerEvery: 40, StragglerFactor: 10}

	slow, err := Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if slow.SpecLaunched != 0 {
		t.Fatalf("speculation disabled but SpecLaunched = %d", slow.SpecLaunched)
	}

	cfg.Cost.SpeculationQuantile = 0.9
	spec, err := Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if spec.SpecLaunched == 0 || spec.SpecWon == 0 {
		t.Fatalf("speculation launched %d, won %d; want both > 0", spec.SpecLaunched, spec.SpecWon)
	}
	if spec.SpecWasted != spec.SpecLaunched {
		t.Errorf("wasted = %d, launched = %d; exactly one attempt per speculation is discarded",
			spec.SpecWasted, spec.SpecLaunched)
	}
	if spec.MakespanSec >= slow.MakespanSec {
		t.Errorf("speculated makespan %v not below straggling makespan %v",
			spec.MakespanSec, slow.MakespanSec)
	}
	if spec.Tasks != slow.Tasks {
		t.Errorf("task counts differ: %d vs %d", spec.Tasks, slow.Tasks)
	}

	// Without stragglers, speculation never triggers and timings are
	// untouched.
	clean := simpleConfig(8, true, true)
	clean.Cost.SpeculationQuantile = 0.9
	ref, err := Run(clean, prog)
	if err != nil {
		t.Fatal(err)
	}
	if ref.SpecLaunched != 0 {
		t.Errorf("straggler-free run speculated %d times", ref.SpecLaunched)
	}
}

// The simulated detector mirrors rt's: an outage window produces suspect
// transitions, and the node rejoins after the window — deterministically.
func TestHeartbeatDetectorSuspectsAndRejoins(t *testing.T) {
	prog := flatProgram(64, 1e-3, 8)
	cfg := simpleConfig(8, true, true)
	cfg.Cost.HeartbeatPeriod = 2e-4
	cfg.Faults.Outages = []Outage{{Node: 3, FromRound: 5, Rounds: 6}}

	first, err := Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if first.HeartbeatRounds < 20 {
		t.Fatalf("only %d heartbeat rounds; period too coarse for the outage window", first.HeartbeatRounds)
	}
	if first.Suspects == 0 {
		t.Error("outage produced no suspects")
	}
	if first.Rejoins == 0 {
		t.Error("healed outage produced no rejoins")
	}

	// Determinism: identical config, identical transitions and charges.
	for i := 0; i < 3; i++ {
		again, err := Run(cfg, prog)
		if err != nil {
			t.Fatal(err)
		}
		if again.Suspects != first.Suspects || again.Rejoins != first.Rejoins ||
			again.HeartbeatRounds != first.HeartbeatRounds || again.MakespanSec != first.MakespanSec {
			t.Fatalf("run %d diverged: %+v vs %+v", i+2, again, first)
		}
	}

	// The detector must not perturb the pipeline: probes are charged off
	// the critical path.
	off := simpleConfig(8, true, true)
	ref, err := Run(off, prog)
	if err != nil {
		t.Fatal(err)
	}
	if ref.MakespanSec != first.MakespanSec {
		t.Errorf("heartbeats changed the makespan: %v vs %v", first.MakespanSec, ref.MakespanSec)
	}
	if first.RuntimeBusySec <= ref.RuntimeBusySec {
		t.Error("probe traffic charged no runtime-core time")
	}
	if first.HopSends <= ref.HopSends {
		t.Error("probe traffic charged no hop sends")
	}
}
