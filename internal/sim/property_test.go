package sim

import (
	"testing"
	"testing/quick"

	"indexlaunch/internal/machine"
)

// Property: makespan is monotone in per-task compute time.
func TestMakespanMonotoneInComputeProperty(t *testing.T) {
	f := func(nodesSel, computeSel uint8) bool {
		nodes := 1 << (nodesSel % 6) // 1..32
		base := float64(computeSel%50+1) * 1e-5
		cfg := simpleConfig(nodes, true, true)
		a, err := Run(cfg, flatProgram(nodes, base, 4))
		if err != nil {
			return false
		}
		b, err := Run(cfg, flatProgram(nodes, base*2, 4))
		if err != nil {
			return false
		}
		return b.MakespanSec >= a.MakespanSec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: under DCR, enabling index launches never hurts (for flat
// independent workloads) beyond one node. At a single node a compact launch
// legitimately costs slightly more than issuing its one task directly —
// the O(1) representation only pays off with parallelism.
func TestIDXNeverHurtsUnderDCRProperty(t *testing.T) {
	f := func(nodesSel, itersSel uint8) bool {
		nodes := 2 << (nodesSel % 8) // 2..256
		iters := int(itersSel%6) + 2
		prog := flatProgram(nodes, 1e-4, iters)
		idx, err := Run(simpleConfig(nodes, true, true), prog)
		if err != nil {
			return false
		}
		noIdx, err := Run(simpleConfig(nodes, true, false), prog)
		if err != nil {
			return false
		}
		// Allow a sliver of float slack.
		return idx.MakespanSec <= noIdx.MakespanSec*1.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: GPU busy time is conserved across configurations — the runtime
// mode changes *when* tasks run, never how much work they do.
func TestGPUBusyConservedProperty(t *testing.T) {
	f := func(nodesSel uint8, dcr, idx bool) bool {
		nodes := 1 << (nodesSel % 7)
		prog := flatProgram(nodes, 1e-4, 3)
		res, err := Run(Config{
			Machine: machine.PizDaint(nodes), Cost: DefaultCosts(),
			DCR: dcr, IDX: idx, DynChecks: true,
		}, prog)
		if err != nil {
			return false
		}
		want := float64(nodes) * 3 * (1e-4 + DefaultCosts().GPULaunch)
		diff := res.GPUBusySec - want
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: makespan never falls below the critical-path lower bound
// (iterations × per-task compute for the same-point dependence chain).
func TestMakespanAboveCriticalPathProperty(t *testing.T) {
	f := func(nodesSel, itersSel uint8) bool {
		nodes := 1 << (nodesSel % 6)
		iters := int(itersSel%8) + 1
		compute := 1e-4
		res, err := Run(simpleConfig(nodes, true, true), flatProgram(nodes, compute, iters))
		if err != nil {
			return false
		}
		bound := float64(iters) * compute
		return res.MakespanSec >= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
