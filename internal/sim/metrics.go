package sim

import (
	"indexlaunch/internal/metrics"
	"indexlaunch/internal/obs"
)

// The simulator's metrics adapter. Like the profiling adapter (profile.go),
// it derives its observations from the exact cost components the engine
// charges, so internal/sim populates the same metric families internal/rt
// maintains — same names, same stage labels, simulated clock instead of
// wall time. The engine's arithmetic never depends on the emitter, so
// enabling metrics cannot perturb a simulated makespan.

// emitter fans the cost-decomposition segments out to both observability
// backends: pipeline-stage spans (internal/obs) and stage-latency
// histograms (internal/metrics). A nil emitter disables both.
type emitter struct {
	rec *obs.Recorder
	mx  *metrics.Pipeline
}

func newEmitter(rec *obs.Recorder, reg *metrics.Registry) *emitter {
	mx := metrics.NewPipeline(reg)
	if rec == nil && mx == nil {
		return nil
	}
	return &emitter{rec: rec, mx: mx}
}

// stageHist maps a span stage to its latency histogram. Replay segments
// count as issuance — under trace replay internal/rt performs the memoized
// dependence wiring inside the issue residual — and stages without a
// histogram return nil (Observe on nil is a no-op).
func (em *emitter) stageHist(st obs.Stage) *metrics.Histogram {
	if em.mx == nil {
		return nil
	}
	switch st {
	case obs.StageIssue, obs.StageReplay:
		return em.mx.LatIssue
	case obs.StageLogical:
		return em.mx.LatLogical
	case obs.StageDistribute:
		return em.mx.LatDistribute
	case obs.StagePhysical:
		return em.mx.LatPhysical
	case obs.StageExecute:
		return em.mx.LatExecute
	}
	return nil
}
