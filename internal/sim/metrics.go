package sim

import (
	"indexlaunch/internal/metrics"
	"indexlaunch/internal/obs"
)

// The simulator's metrics adapter. Like the profiling adapter (profile.go),
// it derives its observations from the exact cost components the engine
// charges, so internal/sim populates the same metric families internal/rt
// maintains — same names, same stage labels, simulated clock instead of
// wall time. The engine's arithmetic never depends on the emitter, so
// enabling metrics cannot perturb a simulated makespan.

// emitter fans the cost-decomposition segments out to both observability
// backends: pipeline-stage spans (internal/obs) and stage-latency
// histograms (internal/metrics). A nil emitter disables both.
type emitter struct {
	rec *obs.Recorder
	mx  *metrics.Pipeline

	// Trace-context state (Config.TraceSeed): root is the run's root span
	// context, ltc the current launch's, tcn the child-key cursor for the
	// launch's non-issue segments. The engine is single-threaded, so a
	// plain counter derives deterministic span identities.
	root obs.TraceRef
	ltc  obs.TraceRef
	tcn  uint64
}

func newEmitter(rec *obs.Recorder, reg *metrics.Registry, traceSeed uint64) *emitter {
	mx := metrics.NewPipeline(reg)
	if rec == nil && mx == nil {
		return nil
	}
	em := &emitter{rec: rec, mx: mx}
	if rec != nil && traceSeed != 0 {
		em.root = obs.NewTraceRef(traceSeed)
	}
	return em
}

// beginLaunch opens launch li's span context. Launch contexts are children
// of the run root keyed by launch index, so a fixed (program, seed) yields
// identical span identities run over run.
func (em *emitter) beginLaunch(li int) {
	if em == nil || !em.root.Valid() {
		return
	}
	em.ltc = em.root.Child(uint64(li) + 1)
	em.tcn = 0
}

// segTC derives the span context for the current launch's next segment.
// Node 0's issue segment carries the launch context itself — mirroring rt,
// where the issue span is the launch span every other stage hangs off — so
// execute spans and hop marks land under it in the tree. Everything else
// (including DCR replicas' issue segments) gets the next child key.
func (em *emitter) segTC(node int, st obs.Stage) obs.TraceRef {
	if em == nil || !em.ltc.Valid() {
		return obs.TraceRef{}
	}
	if st == obs.StageIssue && node == 0 {
		return em.ltc
	}
	em.tcn++
	return em.ltc.Child(em.tcn)
}

// fenceTC is the run-final fence span's context: a root child keyed far
// above any launch index.
func (em *emitter) fenceTC() obs.TraceRef {
	if em == nil || !em.root.Valid() {
		return obs.TraceRef{}
	}
	return em.root.Child(1 << 32)
}

// stageHist maps a span stage to its latency histogram. Replay segments
// count as issuance — under trace replay internal/rt performs the memoized
// dependence wiring inside the issue residual — and stages without a
// histogram return nil (Observe on nil is a no-op).
func (em *emitter) stageHist(st obs.Stage) *metrics.Histogram {
	if em.mx == nil {
		return nil
	}
	switch st {
	case obs.StageIssue, obs.StageReplay:
		return em.mx.LatIssue
	case obs.StageLogical:
		return em.mx.LatLogical
	case obs.StageDistribute:
		return em.mx.LatDistribute
	case obs.StagePhysical:
		return em.mx.LatPhysical
	case obs.StageExecute:
		return em.mx.LatExecute
	}
	return nil
}
