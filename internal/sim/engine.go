package sim

import (
	"fmt"
	"math"

	"indexlaunch/internal/domain"
	"indexlaunch/internal/health"
	"indexlaunch/internal/machine"
	"indexlaunch/internal/metrics"
	"indexlaunch/internal/obs"
)

// Result summarizes one simulated execution.
type Result struct {
	// MakespanSec is the completion time of the last task.
	MakespanSec float64
	// RuntimeBusySec is the total busy time of all runtime/analysis cores.
	RuntimeBusySec float64
	// GPUBusySec is the total busy time of all processors.
	GPUBusySec float64
	// Tasks is the number of point tasks executed.
	Tasks int64
	// Launches is the number of launches processed.
	Launches int64
	// CheckSec is the total time spent in dynamic projection-functor
	// checks.
	CheckSec float64
	// Retries is the number of injected task re-executions (Config.Faults).
	Retries int64
	// HopSends is the number of broadcast-tree hop transmissions charged on
	// the centralized path; MsgRetransmits counts the injected hop drops
	// (Config.Faults.DropEveryHop) that were re-sent after the timeout.
	HopSends       int64
	MsgRetransmits int64
	// Self-healing mirror counters (CostModel.HeartbeatPeriod):
	// HeartbeatRounds detector rounds driven, Suspects transitions into
	// suspicion, Rejoins quarantined nodes readmitted.
	HeartbeatRounds int64
	Suspects        int64
	Rejoins         int64
	// Straggler-speculation counters (CostModel.SpeculationQuantile):
	// backups launched, backups that finished before the straggling
	// original, and attempts whose work was discarded (exactly one per
	// speculation).
	SpecLaunched int64
	SpecWon      int64
	SpecWasted   int64
	// BusyByLaunch is the total processor time per launch name — the
	// workload profile idxsim prints.
	BusyByLaunch map[string]float64
}

// Run simulates prog on cfg and returns the makespan and resource totals.
func Run(cfg Config, prog Program) (Result, error) {
	if err := cfg.Machine.Validate(); err != nil {
		return Result{}, err
	}
	stream, inBody := prog.unroll()
	if len(stream) == 0 {
		return Result{}, fmt.Errorf("sim: program %q has no launches", prog.Name)
	}

	n := cfg.Machine.Nodes
	g := cfg.Machine.GPUs
	net := cfg.Machine.Net
	cost := cfg.Cost

	rtFree := make([]float64, n)
	gpuFree := make([][]float64, n)
	for i := range gpuFree {
		gpuFree[i] = make([]float64, g)
	}

	// Retained per-launch state for dependence lookups.
	finishes := make([][]float64, len(stream))
	owners := make([][]int, len(stream))

	// Profiling state: execute-span IDs per launch point (for dependence
	// edges) and the last span on each processor lane (for the queueing
	// edges the critical-path walk follows through busy processors).
	rec := cfg.Profile
	em := newEmitter(rec, cfg.Metrics, cfg.TraceSeed)
	var mx *metrics.Pipeline
	if em != nil {
		mx = em.mx
	}
	var ids [][]int64
	var gpuLast [][]int64
	if rec != nil {
		ids = make([][]int64, len(stream))
		gpuLast = make([][]int64, n)
		for i := range gpuLast {
			gpuLast[i] = make([]int64, g)
		}
	}

	res := Result{BusyByLaunch: map[string]float64{}}
	bodySeen := 0
	firstBodyLen := len(prog.Body)
	var issuedTotal int64 // drives deterministic fault injection

	for li, l := range stream {
		if l.Points <= 0 {
			return Result{}, fmt.Errorf("sim: launch %q has %d points", l.Name, l.Points)
		}
		em.beginLaunch(li)
		// Replay holds for body launches after the first body iteration.
		replay := false
		if inBody[li] && cfg.Tracing {
			if bodySeen >= firstBodyLen {
				replay = true
			}
			bodySeen++
		}
		if mx != nil {
			mx.LaunchCalls.Inc()
			// The launch stays compact exactly when the engine takes a
			// compact path: IDX everywhere except the centralized
			// tracing-forced expansion (paper §6.2.1).
			if cfg.IDX && (cfg.DCR || !cfg.Tracing || cfg.BulkTracing) {
				mx.IndexLaunched.Inc()
			} else {
				mx.Expanded.Inc()
			}
			if replay {
				mx.TraceReplays.Inc()
				mx.AnalysisSkipped.Add(int64(l.Points))
			}
		}

		owner := make([]int, l.Points)
		localCount := make([]int, n)
		for p := 0; p < l.Points; p++ {
			o := 0
			if l.Owner != nil {
				o = l.Owner(p, n)
			} else {
				o = p * n / l.Points
			}
			if o < 0 {
				o = 0
			}
			if o >= n {
				o = n - 1
			}
			owner[p] = o
			localCount[o]++
		}

		subregions := l.SubregionCount
		if subregions <= 0 {
			subregions = l.Points
		}
		phys := cost.PhysBase + cost.PhysPerLog*math.Log2(float64(subregions)+1)
		checkCost := 0.0
		if cfg.IDX && l.NonTrivialFunctor && cfg.DynChecks && !replay {
			args := l.Args
			if args < 1 {
				args = 1
			}
			checkCost = float64(l.Points) * float64(args) * cost.CheckPerPointArg
			res.CheckSec += checkCost
			if mx != nil {
				mx.DynamicCheckEvals.Add(int64(l.Points) * int64(args))
				mx.CheckEval.Observe(profNS(checkCost))
			}
		}

		// --- Issuance, logical analysis, distribution, physical analysis.
		ready := make([]float64, l.Points)
		rtBefore := sum(rtFree)
		if cfg.DCR {
			runDCR(cfg, em, l, replay, phys, checkCost, localCount, rtFree)
			for p := 0; p < l.Points; p++ {
				ready[p] = rtFree[owner[p]]
			}
		} else {
			runCentralized(cfg, em, l, replay, phys, checkCost, owner, localCount, rtFree, ready, net, &res)
		}
		res.RuntimeBusySec += sum(rtFree) - rtBefore

		// Event propagation + consumer-side mapping latency per dependence
		// edge; grows slowly with machine size. Analysis itself runs ahead
		// of execution (deferred execution), so this latency rides on the
		// dependence chain, not on the analysis clocks.
		depLat := cost.StageLatency * math.Log2(float64(n)+1)

		// --- Execution.
		fin := make([]float64, l.Points)
		var lids []int64
		if rec != nil {
			lids = make([]int64, l.Points)
		}
		localIdx := make([]int, n)
		for p := 0; p < l.Points; p++ {
			node := owner[p]
			start := ready[p]
			// bindID tracks the execute span of whichever predecessor the
			// final start time is bound by — the edge the critical path
			// follows. Zero means the runtime pipeline (ready) bound it.
			var bindID int64
			for _, dep := range l.Deps {
				tgt := li - dep.Back
				if tgt < 0 {
					continue
				}
				if dep.Barrier {
					// Any one slowest task bounds the barrier; scan all.
					for q, fq := range finishes[tgt] {
						t := fq + depLat
						if owners[tgt][q] != node {
							t += net.Transfer(owners[tgt][q], node, l.CommBytes)
						}
						if t > start {
							start = t
							if rec != nil {
								bindID = ids[tgt][q]
							}
						}
					}
					continue
				}
				pts := depPoints(dep, p, len(finishes[tgt]))
				for _, q := range pts {
					if q < 0 || q >= len(finishes[tgt]) {
						continue
					}
					t := finishes[tgt][q] + depLat
					if owners[tgt][q] != node {
						t += net.Transfer(owners[tgt][q], node, l.CommBytes)
					}
					if t > start {
						start = t
						if rec != nil {
							bindID = ids[tgt][q]
						}
					}
				}
			}
			gi := localIdx[node] % g
			localIdx[node]++
			if gpuFree[node][gi] > start {
				start = gpuFree[node][gi]
				if rec != nil {
					bindID = gpuLast[node][gi]
				}
			}
			normal := cost.GPULaunch + l.ComputeSec
			busy := normal
			issuedTotal++
			straggler := false
			if se := cfg.Faults.StragglerEvery; se > 0 && cfg.Faults.StragglerFactor > 1 && issuedTotal%se == 0 {
				// Injected straggler: the attempt runs slower than nominal.
				straggler = true
				busy = normal * cfg.Faults.StragglerFactor
			}
			if re := cfg.Faults.RetryEvery; re > 0 && issuedTotal%re == 0 {
				// Injected failure: the attempt is re-executed on the same
				// processor after the retry scheduling penalty.
				busy += normal
				start += cost.RetryPenalty
				res.Retries++
				if mx != nil {
					mx.Retries.Inc()
				}
				if rec != nil {
					rec.MarkTC(em.segTC(node, obs.StageRetry), node, obs.StageRetry, l.Name, l.Name, domain.Pt1(int64(p)), profNS(start))
				}
			}
			end := start + busy
			charged := busy
			if straggler && cost.SpeculationQuantile > 0 {
				// Straggler speculation, mirroring rt: a backup launches on
				// an assumed-idle healthy node (off the lane model) once the
				// adaptive threshold — nominal × DefaultSpecMultiplier, since
				// the cost model knows the latency distribution exactly —
				// elapses; the earlier completion wins and the loser's work
				// is discarded.
				backupStart := start + normal*health.DefaultSpecMultiplier
				backupEnd := backupStart + normal
				res.SpecLaunched++
				res.SpecWasted++
				if mx != nil {
					mx.SpecLaunched.Inc()
					mx.SpecWasted.Inc()
				}
				if rec != nil {
					rec.MarkTC(em.segTC(node, obs.StageSpeculate), node, obs.StageSpeculate, l.Name, l.Name, domain.Pt1(int64(p)), profNS(backupStart))
				}
				if backupEnd < end {
					// Backup wins; the straggling original is cancelled at
					// commit, freeing its lane. Charge the cancelled
					// original's partial run plus the backup's full run.
					end = backupEnd
					charged = (end - start) + normal
					res.SpecWon++
					if mx != nil {
						mx.SpecWon.Inc()
					}
				} else {
					// Original finished first; the backup's run is waste.
					charged = busy + normal
				}
			}
			if mx != nil {
				mx.LatExecute.Observe(profNS(end - start))
			}
			gpuFree[node][gi] = end
			fin[p] = end
			res.GPUBusySec += charged
			res.BusyByLaunch[l.Name] += charged
			if end > res.MakespanSec {
				res.MakespanSec = end
			}
			if rec != nil {
				id := rec.NextID()
				lids[p] = id
				if bindID != 0 {
					rec.Edge(bindID, id)
				}
				rec.SpanIDTC(em.segTC(node, obs.StageExecute), id, node, obs.StageExecute, l.Name, l.Name,
					domain.Pt1(int64(p)), profNS(start), profNS(end))
				gpuLast[node][gi] = id
			}
		}
		finishes[li] = fin
		owners[li] = owner
		if rec != nil {
			ids[li] = lids
		}
		res.Tasks += int64(l.Points)
		res.Launches++
		if mx != nil {
			mx.TasksExecuted.Add(int64(l.Points))
		}
	}
	runHeartbeats(cfg, em, &res)
	if mx != nil {
		mx.Sends.Add(res.HopSends)
		mx.Retransmits.Add(res.MsgRetransmits)
	}
	if rec != nil {
		// Every simulated run implicitly ends with an execution fence: the
		// makespan is its completion time. Recording it keeps the stage set
		// identical to a fenced internal/rt run of the same workload.
		rec.SpanTC(em.fenceTC(), 0, obs.StageFence, "", "fence", domain.Point{}, profNS(res.MakespanSec), profNS(res.MakespanSec))
		rec.SetWall(profNS(res.MakespanSec))
	}
	return res, nil
}

// runHeartbeats drives the failure detector over the simulated run: one
// round every CostModel.HeartbeatPeriod simulated seconds of makespan,
// probing every non-observer node, with FaultModel.Outages silencing
// probes. It is the exact internal/health detector rt runs, so a given
// outage schedule produces the same transition sequence in both domains.
// Probe traffic is charged off the critical path — heartbeats ride the
// broadcast tree concurrently with the pipeline, so they consume runtime
// cores and network sends without extending the makespan.
func runHeartbeats(cfg Config, em *emitter, res *Result) {
	hp := cfg.Cost.HeartbeatPeriod
	if hp <= 0 {
		return
	}
	n := cfg.Machine.Nodes
	det := health.New(health.Options{Nodes: n})
	rounds := int64(res.MakespanSec/hp) + 1
	var probeFails int64
	for r := int64(0); r < rounds; r++ {
		trs := det.Tick(func(node int) bool {
			for _, o := range cfg.Faults.Outages {
				if o.covers(node, det.Round()) {
					probeFails++
					return false
				}
			}
			return true
		})
		for _, tr := range trs {
			switch tr.To {
			case health.Suspect:
				res.Suspects++
				if em != nil {
					em.mx.HealthSuspects.Inc()
				}
			case health.Dead:
				if em != nil {
					em.mx.HealthDeaths.Inc()
				}
			case health.Alive:
				res.Rejoins++
				if em != nil {
					em.mx.HealthRejoins.Inc()
				}
			}
			if rec := cfg.Profile; rec != nil {
				label := tr.To.String()
				if tr.To == health.Alive {
					label = "rejoin"
				}
				rec.Mark(tr.Node, obs.StageHealth, label, "health", domain.Point{}, profNS(float64(tr.Round)*hp))
			}
		}
	}
	res.HeartbeatRounds = rounds
	probes := rounds * int64(n-1)
	res.HopSends += probes
	// One probe is a request + response hop pair on the transport.
	res.RuntimeBusySec += float64(probes) * 2 * cfg.Cost.HopLatency
	if em != nil {
		em.mx.HealthProbes.Add(probes)
		em.mx.HealthProbeFails.Add(probeFails)
	}
}

func depPoints(dep DepSpec, p, targetLen int) []int {
	if dep.Map == nil {
		if p < targetLen {
			return []int{p}
		}
		return nil
	}
	return dep.Map(p)
}

// runDCR charges every node's runtime core for its replicated share of the
// launch.
func runDCR(cfg Config, em *emitter, l Launch, replay bool, phys, checkCost float64, localCount []int, rtFree []float64) {
	cost := cfg.Cost
	for node := range rtFree {
		local := float64(localCount[node])
		var c float64
		switch {
		case cfg.IDX && replay && cfg.BulkTracing:
			// Launch-granularity replay: one memoized dependence decision
			// per launch, no per-point work.
			c = cost.LaunchIssue
			_ = local
		case cfg.IDX && replay:
			c = cost.LaunchIssue + local*cost.ReplayPerTask
		case cfg.IDX:
			c = cost.LaunchIssue + cost.LogicalLaunch + checkCost +
				local*(cost.ShardPerLocalTask+phys)
		case replay:
			// Control replication replays the whole issuance loop on every
			// node; tracing elides only the analysis.
			c = float64(l.Points) * l.perTaskReplay(cost)
		default:
			c = float64(l.Points)*l.perTaskIssue(cost) + local*phys
		}
		if em != nil {
			profDCRNode(em, cfg, l, replay, phys, checkCost, local, node, rtFree[node])
		}
		rtFree[node] += c
	}
}

// runCentralized charges node 0 for issuance (and, without index launches
// or with tracing-forced expansion, for per-task processing and sends), the
// broadcast tree for distribution, and destinations for expansion and
// physical analysis.
func runCentralized(cfg Config, em *emitter, l Launch, replay bool, phys, checkCost float64,
	owner []int, localCount []int, rtFree, ready []float64, net machine.Network, res *Result) {

	cost := cfg.Cost
	if cfg.IDX && (!cfg.Tracing || cfg.BulkTracing) {
		// Compact slice distribution through the broadcast tree. Bulk
		// trace replays additionally skip logical analysis and the
		// per-task physical analysis at the destinations.
		bulkReplay := replay && cfg.BulkTracing
		perLocal := cost.ExpandPerTask + phys
		if bulkReplay {
			if em != nil {
				profSeg(em, 0, obs.StageIssue, l.Name, rtFree[0], cost.LaunchIssue)
			}
			rtFree[0] += cost.LaunchIssue
			perLocal = cost.ExpandPerTask
		} else {
			if em != nil {
				t := profSeg(em, 0, obs.StageIssue, l.Name, rtFree[0], cost.LaunchIssue)
				profSeg(em, 0, obs.StageLogical, l.Name, t, cost.LogicalLaunch+checkCost)
			}
			rtFree[0] += cost.LaunchIssue + cost.LogicalLaunch + checkCost
		}
		t0 := rtFree[0]
		// Per-hop walk down the broadcast tree (node i's parent is
		// (i-1)/2): each hop pays network latency, slice handling and the
		// transport's reliable-hop overhead, and DropEveryHop injects
		// deterministic drops that stall the hop for the ack timeout before
		// the re-send. Only hops on routes to nodes that receive slices are
		// charged, mirroring the transport's per-destination routing. With
		// HopLatency = 0 and no drops this reduces to the former closed
		// form t0 + depth·(latency + handling).
		arrival := make([]float64, len(rtFree))
		arrival[0] = t0
		need := make([]bool, len(rtFree))
		for node, c := range localCount {
			if node != 0 && c > 0 {
				for i := node; i != 0; i = (i - 1) / 2 {
					need[i] = true
				}
			}
		}
		hopCost := net.LatencySec + cost.SliceHandling + cost.HopLatency
		rec := cfg.Profile
		for node := 1; node < len(arrival); node++ {
			if !need[node] {
				continue
			}
			parent := (node - 1) / 2
			t := arrival[parent]
			sendStart := t
			res.HopSends++
			if de := cfg.Faults.DropEveryHop; de > 0 && res.HopSends%de == 0 {
				t += cost.RetransmitTimeout
				res.MsgRetransmits++
				res.HopSends++
				if rec != nil {
					rec.MarkTC(em.segTC(parent, obs.StageRetransmit), parent, obs.StageRetransmit, l.Name, l.Name, domain.Point{}, profNS(t))
				}
			}
			t += hopCost
			arrival[node] = t
			if rec != nil {
				rec.SpanTC(em.segTC(parent, obs.StageSend), parent, obs.StageSend, l.Name, l.Name, domain.Point{}, profNS(sendStart), profNS(t))
				rec.MarkTC(em.segTC(node, obs.StageRecv), node, obs.StageRecv, l.Name, l.Name, domain.Point{}, profNS(t))
			}
		}
		for node := range rtFree {
			if localCount[node] == 0 {
				continue
			}
			start := rtFree[node]
			if arrival[node] > start {
				start = arrival[node]
			}
			if em != nil {
				local := float64(localCount[node])
				t := profSeg(em, node, obs.StageDistribute, l.Name, start, local*cost.ExpandPerTask)
				if !bulkReplay {
					profSeg(em, node, obs.StagePhysical, l.Name, t, local*phys)
				}
			}
			rtFree[node] = start + float64(localCount[node])*perLocal
		}
		for p := range ready {
			ready[p] = rtFree[owner[p]]
		}
		return
	}

	// Per-task path: either no index launches, or tracing has forced the
	// launch to expand before distribution (paper §6.2.1). Node 0
	// processes and ships every task serially.
	if em != nil {
		remote := 0
		for node, c := range localCount {
			if node != 0 {
				remote += c
			}
		}
		profCentralIssue(em, cfg, l, replay, phys, localCount[0], remote, rtFree[0])
	}
	t := rtFree[0]
	if cfg.IDX {
		// The index launch is built, then immediately expanded: pure
		// overhead relative to issuing tasks directly.
		t += cost.LaunchIssue + float64(l.Points)*cost.ExpandPerTask
	}
	// Expanded tasks re-enter the per-task issuance path — with index
	// launches this comes *on top of* the launch and expansion overhead,
	// which is the paper's observed slight regression for No-DCR + IDX
	// under tracing.
	perTask := l.perTaskIssue(cost)
	if replay {
		perTask = l.perTaskReplay(cost)
	}
	destFree := make([]float64, len(rtFree))
	copy(destFree, rtFree)
	for p := range ready {
		t += perTask + cost.CentralPerTask
		node := owner[p]
		if node == 0 {
			if !replay {
				t += phys
			}
			ready[p] = t
			continue
		}
		t += cost.SendPerTask
		res.HopSends++
		arr := t + net.LatencySec + cost.HopLatency
		if de := cfg.Faults.DropEveryHop; de > 0 && res.HopSends%de == 0 {
			// Dropped send: the task's arrival stalls for the ack timeout
			// before the re-send; node 0's issue loop is not blocked.
			arr += cost.RetransmitTimeout
			res.MsgRetransmits++
			res.HopSends++
			if rec := cfg.Profile; rec != nil {
				rec.MarkTC(em.segTC(0, obs.StageRetransmit), 0, obs.StageRetransmit, l.Name, l.Name, domain.Pt1(int64(p)), profNS(arr))
			}
		}
		start := destFree[node]
		if arr > start {
			start = arr
		}
		if !replay {
			if em != nil {
				profSeg(em, node, obs.StagePhysical, l.Name, start, phys)
			}
			start += phys
		}
		destFree[node] = start
		ready[p] = start
	}
	rtFree[0] = t
	for node := 1; node < len(rtFree); node++ {
		if destFree[node] > rtFree[node] {
			rtFree[node] = destFree[node]
		}
	}
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
