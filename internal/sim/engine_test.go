package sim

import (
	"math"
	"testing"

	"indexlaunch/internal/machine"
)

func simpleConfig(nodes int, dcr, idx bool) Config {
	return Config{
		Machine:   machine.PizDaint(nodes),
		Cost:      DefaultCosts(),
		DCR:       dcr,
		IDX:       idx,
		DynChecks: true,
	}
}

func flatProgram(points int, compute float64, iters int) Program {
	return Program{
		Name: "flat",
		Body: []Launch{{
			Name: "work", Points: points, ComputeSec: compute,
			Deps: []DepSpec{SamePoint(1)},
		}},
		Iterations: iters,
	}
}

func TestRunBasicMakespan(t *testing.T) {
	// One launch, one node, one task: makespan = runtime overhead + launch
	// overhead + compute.
	cfg := simpleConfig(1, true, true)
	prog := Program{Name: "one", Body: []Launch{{Name: "t", Points: 1, ComputeSec: 1e-3}}, Iterations: 1}
	res, err := Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks != 1 || res.Launches != 1 {
		t.Errorf("tasks=%d launches=%d", res.Tasks, res.Launches)
	}
	if res.MakespanSec < 1e-3 || res.MakespanSec > 2e-3 {
		t.Errorf("makespan = %v, want ~1ms", res.MakespanSec)
	}
}

func TestRunValidation(t *testing.T) {
	cfg := simpleConfig(1, true, true)
	if _, err := Run(cfg, Program{Name: "empty"}); err == nil {
		t.Error("empty program should error")
	}
	if _, err := Run(cfg, Program{Body: []Launch{{Points: 0}}, Iterations: 1}); err == nil {
		t.Error("zero-point launch should error")
	}
	bad := cfg
	bad.Machine.Nodes = 0
	if _, err := Run(bad, flatProgram(1, 1e-3, 1)); err == nil {
		t.Error("invalid machine should error")
	}
}

func TestPerfectWeakScalingWithDCRIDX(t *testing.T) {
	// Independent equal tasks, one per node: time should stay nearly flat
	// as nodes grow (perfect weak scaling minus small overheads).
	base, err := Run(simpleConfig(1, true, true), flatProgram(1, 1e-2, 10))
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(simpleConfig(256, true, true), flatProgram(256, 1e-2, 10))
	if err != nil {
		t.Fatal(err)
	}
	eff := base.MakespanSec / big.MakespanSec
	if eff < 0.9 {
		t.Errorf("DCR+IDX weak efficiency at 256 nodes = %.3f, want > 0.9", eff)
	}
}

func TestDCRNoIDXPaysPerTaskIssuance(t *testing.T) {
	// With No IDX every node issues all P tasks; at large N the runtime
	// core becomes the bottleneck and efficiency drops well below IDX.
	n := 1024
	idx, err := Run(simpleConfig(n, true, true), flatProgram(n, 1e-2, 10))
	if err != nil {
		t.Fatal(err)
	}
	noIdx, err := Run(simpleConfig(n, true, false), flatProgram(n, 1e-2, 10))
	if err != nil {
		t.Fatal(err)
	}
	if noIdx.MakespanSec <= idx.MakespanSec*1.2 {
		t.Errorf("DCR no-IDX (%.4fs) should be clearly slower than IDX (%.4fs) at %d nodes",
			noIdx.MakespanSec, idx.MakespanSec, n)
	}
}

func TestCentralizedBottleneck(t *testing.T) {
	// Without DCR, node 0 serializes issuance and sends; at scale this is
	// far worse than DCR.
	n := 512
	dcr, err := Run(simpleConfig(n, true, true), flatProgram(n, 1e-2, 10))
	if err != nil {
		t.Fatal(err)
	}
	central, err := Run(simpleConfig(n, false, false), flatProgram(n, 1e-2, 10))
	if err != nil {
		t.Fatal(err)
	}
	if central.MakespanSec <= dcr.MakespanSec {
		t.Errorf("centralized (%.4fs) should be slower than DCR (%.4fs)",
			central.MakespanSec, dcr.MakespanSec)
	}
}

func TestCentralizedIDXBroadcastBeatsPerTaskSends(t *testing.T) {
	// No DCR, tracing off: compact slices through the broadcast tree beat
	// per-task sends (the Fig 6 effect).
	n := 256
	idx, err := Run(simpleConfig(n, false, true), flatProgram(n, 1e-3, 10))
	if err != nil {
		t.Fatal(err)
	}
	noIdx, err := Run(simpleConfig(n, false, false), flatProgram(n, 1e-3, 10))
	if err != nil {
		t.Fatal(err)
	}
	if idx.MakespanSec >= noIdx.MakespanSec {
		t.Errorf("No-DCR IDX (%.4fs) should beat No-IDX (%.4fs) without tracing",
			idx.MakespanSec, noIdx.MakespanSec)
	}
}

func TestTracingForcesExpansionReversal(t *testing.T) {
	// No DCR with tracing on: the forced expansion makes IDX slightly
	// worse than No IDX — the paper's Figures 4–5 anomaly.
	n := 256
	cfgIdx := simpleConfig(n, false, true)
	cfgIdx.Tracing = true
	cfgNo := simpleConfig(n, false, false)
	cfgNo.Tracing = true
	idx, err := Run(cfgIdx, flatProgram(n, 1e-3, 10))
	if err != nil {
		t.Fatal(err)
	}
	noIdx, err := Run(cfgNo, flatProgram(n, 1e-3, 10))
	if err != nil {
		t.Fatal(err)
	}
	if idx.MakespanSec <= noIdx.MakespanSec {
		t.Errorf("with tracing, No-DCR IDX (%.5fs) should be slightly worse than No-IDX (%.5fs)",
			idx.MakespanSec, noIdx.MakespanSec)
	}
	if idx.MakespanSec > noIdx.MakespanSec*1.5 {
		t.Errorf("the regression should be slight: %.5fs vs %.5fs", idx.MakespanSec, noIdx.MakespanSec)
	}
}

func TestTracingReducesAnalysisCost(t *testing.T) {
	// DCR+IDX with tracing: replays skip logical analysis, so runtime busy
	// time drops versus no tracing.
	cfg := simpleConfig(64, true, true)
	traced := cfg
	traced.Tracing = true
	plain, err := Run(cfg, flatProgram(64, 1e-4, 20))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Run(traced, flatProgram(64, 1e-4, 20))
	if err != nil {
		t.Fatal(err)
	}
	if tr.RuntimeBusySec >= plain.RuntimeBusySec {
		t.Errorf("tracing should reduce runtime busy time: %.6f vs %.6f",
			tr.RuntimeBusySec, plain.RuntimeBusySec)
	}
}

func TestDynamicCheckCostAccounted(t *testing.T) {
	cfg := simpleConfig(4, true, true)
	prog := Program{
		Name: "checked",
		Body: []Launch{{
			Name: "sweep", Points: 1000, ComputeSec: 1e-5,
			NonTrivialFunctor: true, Args: 3,
		}},
		Iterations: 2,
	}
	res, err := Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * 1000 * 3 * cfg.Cost.CheckPerPointArg
	if math.Abs(res.CheckSec-want) > 1e-12 {
		t.Errorf("check time = %v, want %v", res.CheckSec, want)
	}
	// Disabled checks cost nothing.
	cfg.DynChecks = false
	res, err = Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.CheckSec != 0 {
		t.Errorf("check time with checks off = %v", res.CheckSec)
	}
	// Tracing elides checks on replays.
	cfg.DynChecks = true
	cfg.Tracing = true
	res, err = Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.CheckSec-want/2) > 1e-12 {
		t.Errorf("replayed check time = %v, want %v", res.CheckSec, want/2)
	}
}

func TestDependencyCriticalPath(t *testing.T) {
	// A chain of launches each depending on all tasks of the previous one
	// must serialize: makespan >= iters * compute.
	cfg := simpleConfig(8, true, true)
	prog := Program{
		Name: "chain",
		Body: []Launch{{
			Name: "stage", Points: 8, ComputeSec: 1e-3,
			Deps: []DepSpec{All(1, 8)},
		}},
		Iterations: 10,
	}
	res, err := Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.MakespanSec < 10*1e-3 {
		t.Errorf("makespan %.4fs below serial bound 10ms", res.MakespanSec)
	}
}

func TestCommBytesAddLatency(t *testing.T) {
	// Same-point deps with owners on different nodes pay network transfer.
	cfg := simpleConfig(2, true, true)
	mk := func(bytes float64) float64 {
		prog := Program{
			Name: "comm",
			Body: []Launch{
				{Name: "a", Points: 2, ComputeSec: 1e-4},
				// Reverse ownership so point 0's dependency lives remotely.
				{Name: "b", Points: 2, ComputeSec: 1e-4, CommBytes: bytes,
					Owner: func(p, nodes int) int { return (p + 1) % nodes },
					Deps:  []DepSpec{SamePoint(1)}},
			},
			Iterations: 1,
		}
		res, err := Run(cfg, prog)
		if err != nil {
			t.Fatal(err)
		}
		return res.MakespanSec
	}
	small := mk(0)
	big := mk(1e9) // 1 GB at 10 GB/s = 100 ms
	if big-small < 0.09 {
		t.Errorf("1GB halo should add ~100ms: %.4fs vs %.4fs", big, small)
	}
}

func TestGPUSlotsSerializeOversubscription(t *testing.T) {
	// 4 tasks on 1 node with 1 GPU serialize; on 4 nodes they run
	// concurrently.
	one, err := Run(simpleConfig(1, true, true), flatProgram(4, 1e-3, 1))
	if err != nil {
		t.Fatal(err)
	}
	four, err := Run(simpleConfig(4, true, true), flatProgram(4, 1e-3, 1))
	if err != nil {
		t.Fatal(err)
	}
	if one.MakespanSec < 4e-3 {
		t.Errorf("oversubscribed makespan %.4fs below 4ms serial bound", one.MakespanSec)
	}
	if four.MakespanSec > 2e-3 {
		t.Errorf("distributed makespan %.4fs should be ~1ms", four.MakespanSec)
	}
}

func TestConfigLabel(t *testing.T) {
	cases := map[string]Config{
		"DCR, IDX":       {DCR: true, IDX: true},
		"DCR, No IDX":    {DCR: true},
		"No DCR, IDX":    {IDX: true},
		"No DCR, No IDX": {},
	}
	for want, cfg := range cases {
		if got := cfg.Label(); got != want {
			t.Errorf("label = %q, want %q", got, want)
		}
	}
}

func TestCustomOwnerPlacement(t *testing.T) {
	// All tasks pinned to node 3: its GPU serializes them.
	cfg := simpleConfig(4, true, true)
	prog := Program{
		Name: "pinned",
		Body: []Launch{{
			Name: "p", Points: 4, ComputeSec: 1e-3,
			Owner: func(p, nodes int) int { return 3 },
		}},
		Iterations: 1,
	}
	res, err := Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.MakespanSec < 4e-3 {
		t.Errorf("pinned tasks should serialize: %.4fs", res.MakespanSec)
	}
}

func TestFaultRetryOverhead(t *testing.T) {
	// A 16-task launch with every 4th task re-executing once: 4 retries,
	// each costing an extra launch + compute on the GPU clocks, plus the
	// retry penalty. The model is deterministic: repeated runs agree, and
	// disabling faults recovers the baseline exactly.
	cfg := simpleConfig(1, true, true)
	prog := flatProgram(16, 1e-3, 1)

	base, err := Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if base.Retries != 0 {
		t.Errorf("baseline retries = %d, want 0", base.Retries)
	}

	cfg.Faults = FaultModel{RetryEvery: 4}
	faulty, err := Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if faulty.Retries != 4 {
		t.Errorf("retries = %d, want 4", faulty.Retries)
	}
	wantExtraBusy := 4 * (cfg.Cost.GPULaunch + 1e-3)
	if got := faulty.GPUBusySec - base.GPUBusySec; math.Abs(got-wantExtraBusy) > 1e-9 {
		t.Errorf("extra GPU busy = %v, want %v", got, wantExtraBusy)
	}
	if faulty.MakespanSec <= base.MakespanSec {
		t.Errorf("retries should stretch the makespan: %v <= %v",
			faulty.MakespanSec, base.MakespanSec)
	}

	again, err := Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if again.Retries != faulty.Retries || again.MakespanSec != faulty.MakespanSec {
		t.Errorf("fault model nondeterministic: %+v vs %+v", again, faulty)
	}
}

func TestHopDropRetransmitOverhead(t *testing.T) {
	// Centralized IDX path on 8 nodes: slices travel hop-by-hop through the
	// broadcast tree. Dropping every 3rd hop transmission stalls those hops
	// for the ack timeout, stretching the makespan; disabling drops recovers
	// the baseline, and the injection is deterministic.
	cfg := simpleConfig(8, false, true)
	prog := flatProgram(8, 1e-3, 4)

	base, err := Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if base.HopSends == 0 {
		t.Error("centralized broadcast should charge hop sends")
	}
	if base.MsgRetransmits != 0 {
		t.Errorf("baseline retransmits = %d, want 0", base.MsgRetransmits)
	}

	cfg.Faults = FaultModel{DropEveryHop: 3}
	faulty, err := Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if faulty.MsgRetransmits == 0 {
		t.Error("DropEveryHop=3 injected no retransmits")
	}
	if faulty.MakespanSec <= base.MakespanSec {
		t.Errorf("hop drops should stretch the makespan: %v <= %v",
			faulty.MakespanSec, base.MakespanSec)
	}

	again, err := Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if again.MsgRetransmits != faulty.MsgRetransmits || again.MakespanSec != faulty.MakespanSec {
		t.Errorf("hop-drop injection nondeterministic: %+v vs %+v", again, faulty)
	}
}

func TestHopLatencyReducesToClosedFormWhenZero(t *testing.T) {
	// With HopLatency zeroed and no drops, the per-hop arrival walk must
	// reproduce the closed form t0 + depth·(latency + handling) the engine
	// previously used — i.e. adding the transport terms changed nothing for
	// fault-free runs beyond the calibrated HopLatency itself.
	cfg := simpleConfig(8, false, true)
	cfg.Cost.HopLatency = 0
	res, err := Run(cfg, prog8())
	if err != nil {
		t.Fatal(err)
	}
	withLat := simpleConfig(8, false, true)
	res2, err := Run(withLat, prog8())
	if err != nil {
		t.Fatal(err)
	}
	// node 7 sits at depth 3: the calibrated run is later by at most
	// depth·HopLatency plus scheduling effects, never earlier.
	if res2.MakespanSec < res.MakespanSec {
		t.Errorf("hop latency should not shorten the makespan: %v < %v",
			res2.MakespanSec, res.MakespanSec)
	}
	if res2.MakespanSec > res.MakespanSec+10*withLat.Cost.HopLatency {
		t.Errorf("hop latency overcharged: %v vs %v", res2.MakespanSec, res.MakespanSec)
	}
}

func prog8() Program { return flatProgram(8, 1e-3, 2) }
