package bench

import (
	"strings"
	"testing"
)

// Figures are generated with reduced iteration counts in tests to keep the
// suite fast; the benchmarks and cmd/idxbench run the full settings.
var fast = Options{Iters: 5}

func TestFig4Shape(t *testing.T) {
	fig := Fig4CircuitStrong(Options{Iters: 5, MaxNodes: 512})
	if len(fig.Series) != 4 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	last := len(fig.Series[0].Y) - 1
	dcrIdx := fig.Series[0].Y[last]
	dcrNo := fig.Series[1].Y[last]
	cenIdx := fig.Series[2].Y[last]
	cenNo := fig.Series[3].Y[last]
	if !(dcrIdx > dcrNo) {
		t.Errorf("at 512: DCR+IDX (%.1f) must beat DCR+NoIDX (%.1f)", dcrIdx, dcrNo)
	}
	gap := dcrIdx / dcrNo
	if gap < 1.2 || gap > 4 {
		t.Errorf("strong-scaling gap = %.2fx, paper reports 1.6x; want same ballpark", gap)
	}
	if !(dcrNo > cenNo && cenNo >= cenIdx*0.95) {
		t.Errorf("centralized configs must trail: DCR+NoIDX=%.1f NoDCR+NoIDX=%.1f NoDCR+IDX=%.1f",
			dcrNo, cenNo, cenIdx)
	}
	// The tracing interference: No-DCR IDX at or slightly below No-DCR
	// No-IDX.
	if cenIdx > cenNo {
		t.Errorf("No-DCR IDX (%.2f) should not beat No-IDX (%.2f) under tracing", cenIdx, cenNo)
	}
}

func TestFig5Shape(t *testing.T) {
	fig := Fig5CircuitWeak(Options{Iters: 5, MaxNodes: 1024})
	last := len(fig.Series[0].Y) - 1
	base := fig.Series[0].Y[0]
	eff := fig.Series[0].Y[last] / base
	if eff < 0.6 || eff > 0.98 {
		t.Errorf("DCR+IDX weak efficiency at 1024 = %.2f, paper reports 0.85", eff)
	}
	// At 256 nodes DCR+NoIDX matches DCR+IDX closely (84% vs 85%).
	idx256 := yAt(fig.Series[0], 256)
	no256 := yAt(fig.Series[1], 256)
	if no256 < idx256*0.9 {
		t.Errorf("at 256: DCR+NoIDX (%.2f) should be within 10%% of IDX (%.2f)", no256, idx256)
	}
	// Centralized configurations collapse at scale.
	if cen := fig.Series[3].Y[last]; cen > fig.Series[0].Y[last]*0.5 {
		t.Errorf("No-DCR at 1024 (%.2f) should collapse well below DCR+IDX (%.2f)",
			cen, fig.Series[0].Y[last])
	}
}

func TestFig6Reversal(t *testing.T) {
	fig := Fig6CircuitWeakOverdecomposed(Options{Iters: 5, MaxNodes: 512})
	// Without tracing, IDX beats No-IDX in both DCR and non-DCR modes at
	// scale — the reversal resolution of §6.2.1.
	idxDcr := yAt(fig.Series[0], 512)
	noDcr := yAt(fig.Series[1], 512)
	idxCen := yAt(fig.Series[2], 512)
	noCen := yAt(fig.Series[3], 512)
	if idxDcr <= noDcr {
		t.Errorf("DCR: IDX (%.2f) must beat No-IDX (%.2f) when overdecomposed without tracing", idxDcr, noDcr)
	}
	if idxCen <= noCen {
		t.Errorf("No-DCR: IDX (%.2f) must beat No-IDX (%.2f) when overdecomposed without tracing", idxCen, noCen)
	}
}

func TestFig7And8Shapes(t *testing.T) {
	f7 := Fig7StencilStrong(Options{Iters: 5, MaxNodes: 512})
	last := len(f7.Series[0].Y) - 1
	gap := f7.Series[0].Y[last] / f7.Series[1].Y[last]
	if gap < 1.05 || gap > 6 {
		t.Errorf("stencil strong gap = %.2fx, paper reports 1.2x; want modest", gap)
	}
	f8 := Fig8StencilWeak(Options{Iters: 5, MaxNodes: 1024})
	idx512 := yAt(f8.Series[0], 512)
	no512 := yAt(f8.Series[1], 512)
	idx1024 := yAt(f8.Series[0], 1024)
	no1024 := yAt(f8.Series[1], 1024)
	relAt512 := no512 / idx512
	relAt1024 := no1024 / idx1024
	if relAt1024 >= relAt512 {
		t.Errorf("divergence should grow with node count: %.3f at 512 vs %.3f at 1024",
			relAt512, relAt1024)
	}
}

func TestFig9Shape(t *testing.T) {
	fig := Fig9SoleilFluidWeak(Options{Iters: 5, MaxNodes: 512})
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	base := fig.Series[0].Y[0]
	last := len(fig.Series[0].Y) - 1
	eff := fig.Series[0].Y[last] / base
	if eff < 0.6 || eff > 0.95 {
		t.Errorf("fluid weak efficiency at 512 = %.2f, paper reports 0.78", eff)
	}
	if fig.Series[1].Y[last] >= fig.Series[0].Y[last]*0.9 {
		t.Errorf("No-IDX (%.2f) must fall below IDX (%.2f)", fig.Series[1].Y[last], fig.Series[0].Y[last])
	}
}

func TestFig10Shape(t *testing.T) {
	fig := Fig10SoleilFullWeak(Options{Iters: 5, MaxNodes: 32})
	if len(fig.Series) != 3 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	base := fig.Series[0].Y[0]
	last := len(fig.Series[0].Y) - 1
	eff := fig.Series[0].Y[last] / base
	if eff < 0.4 || eff > 0.9 {
		t.Errorf("full weak efficiency at 32 = %.2f, paper reports 0.64", eff)
	}
	// Check vs no-check: indistinguishable.
	rel := fig.Series[1].Y[last] / fig.Series[0].Y[last]
	if rel < 0.99 || rel > 1.01 {
		t.Errorf("no-check / check ratio = %.4f, want ~1 (negligible cost)", rel)
	}
	if fig.Series[2].Y[last] >= fig.Series[0].Y[last]*0.95 {
		t.Errorf("No-IDX (%.2f) must trail IDX (%.2f)", fig.Series[2].Y[last], fig.Series[0].Y[last])
	}
}

func TestTable2LinearScaling(t *testing.T) {
	tab := Table2SelfChecks()
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		// Reading left to right, each 10x domain growth must grow time
		// roughly linearly (between 3x and 30x — generous bounds for
		// timer noise at the small end).
		for i := 1; i < len(row.MicrosPerSize); i++ {
			ratio := row.MicrosPerSize[i] / row.MicrosPerSize[i-1]
			if ratio < 3 || ratio > 40 {
				t.Errorf("%s: size step %d ratio = %.1fx, want ~10x (linear)", row.Label, i, ratio)
			}
		}
		// The paper's headline: even at 1e6 the check stays in the
		// low-millisecond range (we allow extra headroom for the opaque
		// interface-dispatch path; the paper's compiler inlines it).
		if last := row.MicrosPerSize[len(row.MicrosPerSize)-1]; last > 40_000 {
			t.Errorf("%s at 1e6 took %.0f µs; want low milliseconds", row.Label, last)
		}
	}
}

func TestTable3LinearInArgs(t *testing.T) {
	tab := Table3CrossChecks()
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Reading down a column, time grows roughly linearly with argument
	// count: 5 args should cost no more than ~4x 2 args (2.5x ideal).
	col := len(Table2Sizes) - 1
	t2 := tab.Rows[0].MicrosPerSize[col]
	t5 := tab.Rows[3].MicrosPerSize[col]
	if t5 < t2 || t5 > 5*t2 {
		t.Errorf("5-arg check (%.0f µs) vs 2-arg (%.0f µs): want ~2.5x", t5, t2)
	}
}

func TestRenderOutputs(t *testing.T) {
	fig := Fig10SoleilFullWeak(Options{Iters: 2, MaxNodes: 4})
	out := fig.Render()
	if !strings.Contains(out, "Fig10") || !strings.Contains(out, "DCR, IDX (dynamic check)") {
		t.Errorf("figure render:\n%s", out)
	}
	tab := Table{ID: "T", Title: "t", Sizes: []int64{10}, Rows: []TableRow{{Label: "x", MicrosPerSize: []float64{1.5}}}}
	if !strings.Contains(tab.Render(), "1.5") {
		t.Errorf("table render:\n%s", tab.Render())
	}
}

func TestFigBulkTracingExtension(t *testing.T) {
	fig := FigBulkTracing(Options{Iters: 5, MaxNodes: 256})
	bulkIdx := yAt(fig.Series[1], 256) // No DCR, IDX (bulk)
	stdIdx := yAt(fig.Series[2], 256)  // No DCR, IDX (std)
	noIdx := yAt(fig.Series[3], 256)   // No DCR, No IDX
	dcrBulk := yAt(fig.Series[0], 256) // DCR, IDX (bulk)
	if bulkIdx <= noIdx || bulkIdx <= stdIdx {
		t.Errorf("bulk tracing should recover the compact path: bulk=%.2f std=%.2f noIDX=%.2f",
			bulkIdx, stdIdx, noIdx)
	}
	if dcrBulk < bulkIdx*0.95 {
		t.Errorf("DCR+bulk (%.2f) should be at least on par with No-DCR+bulk (%.2f)", dcrBulk, bulkIdx)
	}
}

func TestGeneratorRegistries(t *testing.T) {
	if len(Figures()) != 7 {
		t.Errorf("figures = %d, want 7 (Figs 4-10)", len(Figures()))
	}
	if len(Tables()) != 2 {
		t.Errorf("tables = %d, want 2 (Tables 2-3)", len(Tables()))
	}
}

func yAt(s Series, x int) float64 {
	for i, v := range s.X {
		if v == x {
			return s.Y[i]
		}
	}
	return 0
}

var _ = fast
