package bench

import (
	"fmt"

	"indexlaunch/internal/apps/circuit"
	"indexlaunch/internal/apps/soleil"
	"indexlaunch/internal/apps/stencil"
	"indexlaunch/internal/machine"
	"indexlaunch/internal/obs"
	"indexlaunch/internal/sim"
)

// ProfileFigure runs one representative configuration of figure id — the
// paper's headline DCR + IDX curve at a small node count — with profiling
// attached, and returns the recorded profile. A figure sweep covers dozens
// of (nodes × config) points; profiling all of them into one stream would
// be unreadable, so the profile answers the question the figures raise:
// where does the pipeline time of the interesting configuration go?
func ProfileFigure(id int, o Options) (*obs.Profile, error) {
	nodes := 16
	if o.MaxNodes > 0 && o.MaxNodes < nodes {
		nodes = o.MaxNodes
	}
	iters := o.iters(5)
	tracing := true
	var prog sim.Program
	switch id {
	case 4:
		prog = circuit.SimProgram(circuit.SimParams{
			Nodes: nodes, TasksPerNode: 1, WiresPerTask: 5.1e6 / float64(nodes), Iters: iters,
		})
	case 5:
		prog = circuit.SimProgram(circuit.SimParams{
			Nodes: nodes, TasksPerNode: 1, WiresPerTask: 2e5, Iters: iters,
		})
	case 6:
		tracing = false
		prog = circuit.SimProgram(circuit.SimParams{
			Nodes: nodes, TasksPerNode: 10, WiresPerTask: 2e4, Iters: iters,
		})
	case 7:
		prog = stencil.SimProgram(stencil.SimParams{
			Nodes: nodes, CellsPerTask: 9e8 / float64(nodes), Iters: iters,
		})
	case 8:
		prog = stencil.SimProgram(stencil.SimParams{
			Nodes: nodes, CellsPerTask: 9e8, Iters: iters,
		})
	case 9:
		prog = soleil.SimProgram(soleil.SimParams{Nodes: nodes, Iters: iters})
	case 10:
		prog = soleil.SimProgram(soleil.SimParams{
			Nodes: nodes, DOM: true, Particles: true, Iters: iters,
		})
	default:
		return nil, fmt.Errorf("bench: no figure %d (have 4-10)", id)
	}
	rec := obs.NewRecorder("sim", nodes, 1<<14)
	_, err := sim.Run(sim.Config{
		Machine: machine.PizDaint(nodes), Cost: o.cost(),
		DCR: true, IDX: true, Tracing: tracing, DynChecks: true,
		Profile: rec, Metrics: o.Metrics,
	}, prog)
	if err != nil {
		return nil, err
	}
	return rec.Snapshot(), nil
}
