package bench

import (
	"indexlaunch/internal/apps/circuit"
	"indexlaunch/internal/machine"
	"indexlaunch/internal/sim"
)

// FigBulkTracing is an extension experiment beyond the paper: it re-runs
// the Figure 5 circuit weak-scaling sweep with the paper's *future work*
// implemented — tracing at launch granularity ("bulk tracing", §6.2.1's
// closing paragraph). With it, tracing no longer forces early expansion in
// centralized mode, so "No DCR, IDX" recovers the compact broadcast path
// and beats "No DCR, No IDX" even with tracing enabled.
func FigBulkTracing(o Options) Figure {
	const wiresPerNode = 2e5
	iters := o.iters(20)
	fig := Figure{
		ID:     "FigX",
		Title:  "EXTENSION: circuit weak scaling with launch-granularity (bulk) tracing",
		XLabel: "nodes", YLabel: "throughput per node, 1e6 wires/s",
	}
	configs := []struct {
		label     string
		dcr, idx  bool
		bulkTrace bool
	}{
		{"DCR, IDX (bulk)", true, true, true},
		{"No DCR, IDX (bulk)", false, true, true},
		{"No DCR, IDX (std)", false, true, false},
		{"No DCR, No IDX", false, false, false},
	}
	for _, cfg := range configs {
		s := Series{Label: cfg.label}
		for _, n := range o.nodes(1024) {
			prog := circuit.SimProgram(circuit.SimParams{
				Nodes: n, TasksPerNode: 1, WiresPerTask: wiresPerNode, Iters: iters,
			})
			res, err := sim.Run(sim.Config{
				Machine: machine.PizDaint(n), Cost: o.cost(),
				DCR: cfg.dcr, IDX: cfg.idx, Tracing: true,
				BulkTracing: cfg.bulkTrace, DynChecks: true,
				Metrics: o.Metrics,
			}, prog)
			if err != nil {
				panic(err)
			}
			s.X = append(s.X, n)
			s.Y = append(s.Y, circuit.WiresPerSecond(wiresPerNode*float64(n), iters, res.MakespanSec)/float64(n)/1e6)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}
