package bench

import (
	"fmt"
	"strings"
	"time"

	"indexlaunch/internal/domain"
	"indexlaunch/internal/projection"
	"indexlaunch/internal/safety"
)

// Table is a rendered timing table: one row per case, one column per launch
// domain size, entries in microseconds. Unlike the figures, tables report
// *real measured* times of this repository's dynamic-check implementation.
type Table struct {
	ID    string
	Title string
	Sizes []int64
	Rows  []TableRow
}

// TableRow is one measured case.
type TableRow struct {
	Label string
	// MicrosPerSize holds the elapsed microseconds per domain size.
	MicrosPerSize []float64
}

// Render prints the table in the paper's layout.
func (t Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s (elapsed µs)\n", t.ID, t.Title)
	fmt.Fprintf(&b, "%-28s", "case")
	for _, s := range t.Sizes {
		fmt.Fprintf(&b, " %10.0e", float64(s))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-28s", r.Label)
		for _, v := range r.MicrosPerSize {
			fmt.Fprintf(&b, " %10.1f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Table2Sizes are the launch-domain sizes of the paper's Tables 2 and 3.
var Table2Sizes = []int64{1e3, 1e4, 1e5, 1e6}

// Table2Functors are the paper's self-check cases: all are safe over
// [0, size) so the check never exits early.
func Table2Functors(size int64) []struct {
	Label   string
	Functor projection.Functor
} {
	return []struct {
		Label   string
		Functor projection.Functor
	}{
		{"Identity i", projection.Identity(1)},
		{"Linear a*i+b", projection.Affine1D(1, 3)},
		{"Modular (i+k) mod N", projection.Modular1D(1, 7, size)},
		{"Quadratic a*i^2+b*i+c", projection.Quadratic1D(1, 1, 1)},
	}
}

// measure times fn with enough repetitions for a stable reading and returns
// the per-call elapsed time.
func measure(fn func()) time.Duration {
	reps := 1
	for {
		start := time.Now()
		for i := 0; i < reps; i++ {
			fn()
		}
		elapsed := time.Since(start)
		if elapsed > 10*time.Millisecond || reps >= 1<<20 {
			return elapsed / time.Duration(reps)
		}
		reps *= 4
	}
}

// Table2SelfChecks measures the dynamic self-check (Listing 3) for the four
// functor shapes of the paper's Table 2. The launch domain size equals the
// number of sub-collections.
func Table2SelfChecks() Table {
	t := Table{ID: "Table2", Title: "dynamic self-checks for safe projection functors", Sizes: Table2Sizes}
	for fi := range Table2Functors(1) {
		row := TableRow{Label: Table2Functors(1)[fi].Label}
		for _, size := range t.Sizes {
			f := Table2Functors(size)[fi].Functor
			d := domain.Range1(0, size-1)
			bounds := domain.Rect1(0, size-1)
			el := measure(func() {
				r := safety.DynamicSelfCheck(d, bounds, f)
				if !r.Injective {
					panic("bench: Table 2 functor must be safe (no early exit)")
				}
			})
			row.MicrosPerSize = append(row.MicrosPerSize, float64(el.Nanoseconds())/1e3)
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Table3Args builds the paper's Table 3 argument sets: n arguments sharing
// one partition whose color space holds twice the launch-domain size — one
// write over the lower half, n-1 reads aliasing in the upper half, all
// safe.
func Table3Args(n int, size int64) []safety.CrossArg {
	args := make([]safety.CrossArg, 0, n)
	args = append(args, safety.CrossArg{Functor: projection.Identity(1), Writes: true})
	for i := 1; i < n; i++ {
		args = append(args, safety.CrossArg{Functor: projection.Affine1D(1, size), Writes: false})
	}
	return args
}

// Table3CrossChecks measures the linear-time multi-argument cross-check for
// 2–5 arguments on one shared partition (sub-collections = 2·|D|).
func Table3CrossChecks() Table {
	t := Table{ID: "Table3", Title: "dynamic cross-checks, multiple arguments on one partition", Sizes: Table2Sizes}
	for n := 2; n <= 5; n++ {
		row := TableRow{Label: fmt.Sprintf("%d arguments", n)}
		for _, size := range t.Sizes {
			d := domain.Range1(0, size-1)
			bounds := domain.Rect1(0, 2*size-1)
			args := Table3Args(n, size)
			el := measure(func() {
				r := safety.DynamicCrossCheck(d, bounds, args)
				if !r.Safe {
					panic("bench: Table 3 arguments must be safe")
				}
			})
			row.MicrosPerSize = append(row.MicrosPerSize, float64(el.Nanoseconds())/1e3)
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Tables returns every table generator keyed by number.
func Tables() map[int]func() Table {
	return map[int]func() Table{
		2: Table2SelfChecks,
		3: Table3CrossChecks,
	}
}
