package bench

import (
	"strings"
	"testing"
)

func TestRenderChart(t *testing.T) {
	fig := Figure{
		ID: "T", Title: "test", XLabel: "nodes", YLabel: "units",
		Series: []Series{
			{Label: "a", X: []int{1, 2, 4}, Y: []float64{1, 2, 4}},
			{Label: "b", X: []int{1, 2, 4}, Y: []float64{1, 1, 1}},
		},
	}
	out := fig.RenderChart()
	if !strings.Contains(out, "# = a") || !strings.Contains(out, "* = b") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "4.0 |") {
		t.Errorf("y-axis max label missing:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	// The top data row must contain the '#' of series a's maximum.
	if !strings.Contains(lines[1], "#") {
		t.Errorf("max point not on top row:\n%s", out)
	}
	// Earlier series win overlaps: at x=1 both series have y=1; the mark
	// must be '#'.
	found := false
	for _, l := range lines {
		if strings.Contains(l, "#") && !strings.Contains(l, "=") {
			found = true
		}
	}
	if !found {
		t.Errorf("no data marks:\n%s", out)
	}
}

func TestRenderChartDegenerate(t *testing.T) {
	// Empty and all-zero figures fall back to the tabular renderer.
	empty := Figure{ID: "E", Title: "empty"}
	if out := empty.RenderChart(); !strings.Contains(out, "E: empty") {
		t.Errorf("empty chart:\n%s", out)
	}
	zero := Figure{ID: "Z", Title: "zero", Series: []Series{{Label: "a", X: []int{1}, Y: []float64{0}}}}
	if out := zero.RenderChart(); !strings.Contains(out, "Z: zero") {
		t.Errorf("zero chart:\n%s", out)
	}
}
