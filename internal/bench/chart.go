package bench

import (
	"fmt"
	"math"
	"strings"
)

// chartHeight is the number of character rows in an ASCII chart.
const chartHeight = 16

// seriesMarks are the plot symbols, one per series, matching the order the
// figure generators emit (DCR+IDX first).
var seriesMarks = []byte{'#', '*', 'o', '.', '+', 'x'}

// RenderChart draws the figure as an ASCII chart: x = node index (one
// column group per swept node count), y = the metric scaled linearly from
// zero. Overlapping points print the mark of the earlier series.
func (f Figure) RenderChart() string {
	if len(f.Series) == 0 || len(f.Series[0].X) == 0 {
		return f.Render()
	}
	maxY := 0.0
	for _, s := range f.Series {
		for _, y := range s.Y {
			if y > maxY {
				maxY = y
			}
		}
	}
	if maxY <= 0 || math.IsNaN(maxY) || math.IsInf(maxY, 0) {
		return f.Render()
	}
	cols := len(f.Series[0].X)
	colWidth := 6
	grid := make([][]byte, chartHeight)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols*colWidth))
	}
	for si := len(f.Series) - 1; si >= 0; si-- {
		s := f.Series[si]
		mark := seriesMarks[si%len(seriesMarks)]
		for i, y := range s.Y {
			row := int(math.Round(y / maxY * float64(chartHeight-1)))
			if row < 0 {
				row = 0
			}
			if row > chartHeight-1 {
				row = chartHeight - 1
			}
			grid[chartHeight-1-row][i*colWidth+colWidth/2] = mark
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", f.ID, f.Title)
	for r, line := range grid {
		label := "        "
		if r == 0 {
			label = fmt.Sprintf("%7.1f ", maxY)
		}
		if r == chartHeight-1 {
			label = fmt.Sprintf("%7.1f ", 0.0)
		}
		fmt.Fprintf(&b, "%s|%s\n", label, string(line))
	}
	b.WriteString("        +" + strings.Repeat("-", cols*colWidth) + "\n")
	b.WriteString("         ")
	for _, x := range f.Series[0].X {
		fmt.Fprintf(&b, "%-*d", colWidth, x)
	}
	b.WriteString(" [nodes]\n")
	for si, s := range f.Series {
		fmt.Fprintf(&b, "         %c = %s\n", seriesMarks[si%len(seriesMarks)], s.Label)
	}
	fmt.Fprintf(&b, "         y: %s\n", f.YLabel)
	return b.String()
}
