package bench

import (
	"fmt"
	"strings"

	"indexlaunch/internal/metrics"
)

// BenchFromFigure flattens a figure into a machine-readable bench snapshot
// (one value per series point, named "fig5/DCR, IDX/16") for `idxbench
// -json` and the `idxprof diff` regression gate. The orientation is derived
// from the figure's Y axis — every throughput figure is better-higher; cost
// axes are better-lower — so the comparator needs no out-of-band knowledge.
// The simulator is deterministic, which is what makes a committed snapshot
// a stable baseline for CI to diff against.
func BenchFromFigure(f Figure) metrics.BenchSnapshot {
	better := "lower"
	if strings.Contains(strings.ToLower(f.YLabel), "throughput") {
		better = "higher"
	}
	snap := metrics.BenchSnapshot{
		Name: strings.ToLower(f.ID),
		Meta: map[string]string{"title": f.Title, "ylabel": f.YLabel},
	}
	for _, s := range f.Series {
		for i, x := range s.X {
			if i >= len(s.Y) {
				continue
			}
			snap.Values = append(snap.Values, metrics.BenchValue{
				Name:   fmt.Sprintf("%s/%s/%d", strings.ToLower(f.ID), s.Label, x),
				Value:  s.Y[i],
				Better: better,
			})
		}
	}
	return snap
}
