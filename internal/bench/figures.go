// Package bench regenerates every table and figure of the paper's
// evaluation (§6): the strong/weak scaling figures via the cluster
// simulator, and the dynamic-check timing tables via real measurements of
// the safety package. Each generator returns a Figure/Table value whose
// Render method prints the same rows and series the paper reports.
package bench

import (
	"fmt"
	"strings"

	"indexlaunch/internal/apps/circuit"
	"indexlaunch/internal/apps/soleil"
	"indexlaunch/internal/apps/stencil"
	"indexlaunch/internal/machine"
	"indexlaunch/internal/metrics"
	"indexlaunch/internal/sim"
)

// Series is one curve of a figure.
type Series struct {
	Label string
	X     []int
	Y     []float64
}

// Figure is a rendered experiment: node counts vs one metric per
// configuration.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Render prints the figure as an aligned table, one row per node count.
func (f Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "%-8s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %16s", s.Label)
	}
	fmt.Fprintf(&b, "   [%s]\n", f.YLabel)
	if len(f.Series) == 0 {
		return b.String()
	}
	for i, x := range f.Series[0].X {
		fmt.Fprintf(&b, "%-8d", x)
		for _, s := range f.Series {
			if i < len(s.Y) {
				fmt.Fprintf(&b, " %16.3f", s.Y[i])
			} else {
				fmt.Fprintf(&b, " %16s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Options tune figure generation; zero values select faithful defaults.
type Options struct {
	// Iters is the number of timesteps simulated per data point.
	Iters int
	// MaxNodes caps the node sweep (power-of-two points up to the cap).
	MaxNodes int
	// Metrics optionally attaches a live metrics registry to every
	// simulation of the sweep (idxbench -metrics): the cost model's
	// pipeline counters and stage-latency histograms accumulate across the
	// whole figure, so a scrape mid-sweep shows progress.
	Metrics *metrics.Registry
	// Heartbeat enables the self-healing failure detector in every
	// simulation of the sweep (idxbench -heartbeat): the cost model
	// charges heartbeat-probe traffic at this period in simulated seconds,
	// so the figures show the detector's overhead on the paper's
	// workloads. 0 disables it.
	Heartbeat float64
	// Speculate sets the straggler-speculation quantile of every
	// simulation (idxbench -speculate). The sweeps inject no stragglers,
	// so this measures that an armed speculator is free on healthy runs.
	// 0 disables it.
	Speculate float64
}

// cost is the sweep's cost model: the calibrated defaults plus the
// self-healing knobs.
func (o Options) cost() sim.CostModel {
	c := sim.DefaultCosts()
	c.HeartbeatPeriod = o.Heartbeat
	c.SpeculationQuantile = o.Speculate
	return c
}

func (o Options) iters(def int) int {
	if o.Iters > 0 {
		return o.Iters
	}
	return def
}

func (o Options) nodes(def int) []int {
	cap := def
	if o.MaxNodes > 0 {
		cap = o.MaxNodes
	}
	var out []int
	for n := 1; n <= cap; n *= 2 {
		out = append(out, n)
	}
	return out
}

// fourConfigs are the cartesian-product configurations of Figures 4–8.
var fourConfigs = []struct {
	label    string
	dcr, idx bool
}{
	{"DCR, IDX", true, true},
	{"DCR, No IDX", true, false},
	{"No DCR, IDX", false, true},
	{"No DCR, No IDX", false, false},
}

func runSim(o Options, nodes int, dcr, idx, tracing, checks bool, prog sim.Program) float64 {
	res, err := sim.Run(sim.Config{
		Machine: machine.PizDaint(nodes), Cost: o.cost(),
		DCR: dcr, IDX: idx, Tracing: tracing, DynChecks: checks,
		Metrics: o.Metrics,
	}, prog)
	if err != nil {
		panic(err) // programs are generated; a failure is a harness bug
	}
	return res.MakespanSec
}

// Fig4CircuitStrong regenerates Figure 4: circuit strong scaling at
// 5.1·10⁶ wires, throughput in 10⁶ wires/s.
func Fig4CircuitStrong(o Options) Figure {
	const totalWires = 5.1e6
	iters := o.iters(20)
	fig := Figure{ID: "Fig4", Title: "Circuit strong scaling (5.1e6 wires)",
		XLabel: "nodes", YLabel: "throughput, 1e6 wires/s"}
	for _, cfg := range fourConfigs {
		s := Series{Label: cfg.label}
		for _, n := range o.nodes(512) {
			prog := circuit.SimProgram(circuit.SimParams{
				Nodes: n, TasksPerNode: 1, WiresPerTask: totalWires / float64(n), Iters: iters,
			})
			mk := runSim(o, n, cfg.dcr, cfg.idx, true, true, prog)
			s.X = append(s.X, n)
			s.Y = append(s.Y, circuit.WiresPerSecond(totalWires, iters, mk)/1e6)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Fig5CircuitWeak regenerates Figure 5: circuit weak scaling at 2·10⁵
// wires/node, per-node throughput in 10⁶ wires/s.
func Fig5CircuitWeak(o Options) Figure {
	const wiresPerNode = 2e5
	iters := o.iters(20)
	fig := Figure{ID: "Fig5", Title: "Circuit weak scaling (2e5 wires/node)",
		XLabel: "nodes", YLabel: "throughput per node, 1e6 wires/s"}
	for _, cfg := range fourConfigs {
		s := Series{Label: cfg.label}
		for _, n := range o.nodes(1024) {
			prog := circuit.SimProgram(circuit.SimParams{
				Nodes: n, TasksPerNode: 1, WiresPerTask: wiresPerNode, Iters: iters,
			})
			mk := runSim(o, n, cfg.dcr, cfg.idx, true, true, prog)
			s.X = append(s.X, n)
			s.Y = append(s.Y, circuit.WiresPerSecond(wiresPerNode*float64(n), iters, mk)/float64(n)/1e6)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Fig6CircuitWeakOverdecomposed regenerates Figure 6: circuit weak scaling
// with 10× overdecomposition and tracing disabled.
func Fig6CircuitWeakOverdecomposed(o Options) Figure {
	const wiresPerNode = 2e5
	const overdecompose = 10
	iters := o.iters(20)
	fig := Figure{ID: "Fig6", Title: "Circuit weak scaling, overdecomposed 10x, no tracing",
		XLabel: "nodes", YLabel: "throughput per node, 1e6 wires/s"}
	for _, cfg := range fourConfigs {
		s := Series{Label: cfg.label}
		for _, n := range o.nodes(1024) {
			prog := circuit.SimProgram(circuit.SimParams{
				Nodes: n, TasksPerNode: overdecompose,
				WiresPerTask: wiresPerNode / overdecompose, Iters: iters,
			})
			mk := runSim(o, n, cfg.dcr, cfg.idx, false, true, prog)
			s.X = append(s.X, n)
			s.Y = append(s.Y, circuit.WiresPerSecond(wiresPerNode*float64(n), iters, mk)/float64(n)/1e6)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Fig7StencilStrong regenerates Figure 7: stencil strong scaling at 9·10⁸
// cells, throughput in 10⁹ cells/s.
func Fig7StencilStrong(o Options) Figure {
	const totalCells = 9e8
	iters := o.iters(20)
	fig := Figure{ID: "Fig7", Title: "Stencil strong scaling (9e8 cells)",
		XLabel: "nodes", YLabel: "throughput, 1e9 cells/s"}
	for _, cfg := range fourConfigs {
		s := Series{Label: cfg.label}
		for _, n := range o.nodes(512) {
			prog := stencil.SimProgram(stencil.SimParams{
				Nodes: n, CellsPerTask: totalCells / float64(n), Iters: iters,
			})
			mk := runSim(o, n, cfg.dcr, cfg.idx, true, true, prog)
			s.X = append(s.X, n)
			s.Y = append(s.Y, stencil.CellsPerSecond(totalCells, iters, mk)/1e9)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Fig8StencilWeak regenerates Figure 8: stencil weak scaling at 9·10⁸
// cells/node, per-node throughput in 10⁹ cells/s.
func Fig8StencilWeak(o Options) Figure {
	const cellsPerNode = 9e8
	iters := o.iters(20)
	fig := Figure{ID: "Fig8", Title: "Stencil weak scaling (9e8 cells/node)",
		XLabel: "nodes", YLabel: "throughput per node, 1e9 cells/s"}
	for _, cfg := range fourConfigs {
		s := Series{Label: cfg.label}
		for _, n := range o.nodes(1024) {
			prog := stencil.SimProgram(stencil.SimParams{
				Nodes: n, CellsPerTask: cellsPerNode, Iters: iters,
			})
			mk := runSim(o, n, cfg.dcr, cfg.idx, true, true, prog)
			s.X = append(s.X, n)
			s.Y = append(s.Y, stencil.CellsPerSecond(cellsPerNode*float64(n), iters, mk)/float64(n)/1e9)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Fig9SoleilFluidWeak regenerates Figure 9: Soleil-X fluid-only weak
// scaling, iterations/s per node, DCR configurations only (as plotted).
func Fig9SoleilFluidWeak(o Options) Figure {
	iters := o.iters(10)
	fig := Figure{ID: "Fig9", Title: "Soleil-X (fluid-only) weak scaling",
		XLabel: "nodes", YLabel: "throughput per node, iter/s"}
	for _, cfg := range []struct {
		label string
		idx   bool
	}{{"DCR, IDX", true}, {"DCR, No IDX", false}} {
		s := Series{Label: cfg.label}
		for _, n := range o.nodes(512) {
			prog := soleil.SimProgram(soleil.SimParams{Nodes: n, Iters: iters})
			mk := runSim(o, n, true, cfg.idx, true, true, prog)
			s.X = append(s.X, n)
			s.Y = append(s.Y, soleil.IterPerSecondPerNode(iters, mk))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Fig10SoleilFullWeak regenerates Figure 10: Soleil-X with fluid, particles
// and DOM, comparing dynamic-check, no-check, and No-IDX configurations.
func Fig10SoleilFullWeak(o Options) Figure {
	iters := o.iters(10)
	fig := Figure{ID: "Fig10", Title: "Soleil-X (fluid, particle and DOM) weak scaling",
		XLabel: "nodes", YLabel: "throughput per node, iter/s"}
	for _, cfg := range []struct {
		label       string
		idx, checks bool
	}{
		{"DCR, IDX (dynamic check)", true, true},
		{"DCR, IDX (no check)", true, false},
		{"DCR, No IDX", false, true},
	} {
		s := Series{Label: cfg.label}
		for _, n := range o.nodes(32) {
			prog := soleil.SimProgram(soleil.SimParams{
				Nodes: n, DOM: true, Particles: true, Iters: iters,
			})
			mk := runSim(o, n, true, cfg.idx, true, cfg.checks, prog)
			s.X = append(s.X, n)
			s.Y = append(s.Y, soleil.IterPerSecondPerNode(iters, mk))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Figures returns every figure generator keyed by number.
func Figures() map[int]func(Options) Figure {
	return map[int]func(Options) Figure{
		4:  Fig4CircuitStrong,
		5:  Fig5CircuitWeak,
		6:  Fig6CircuitWeakOverdecomposed,
		7:  Fig7StencilStrong,
		8:  Fig8StencilWeak,
		9:  Fig9SoleilFluidWeak,
		10: Fig10SoleilFullWeak,
	}
}
