// Package wal is a generic append-only write-ahead log with snapshots: the
// durability substrate under the scheduler's job journal. It follows the
// recoverable-task-state discipline the ROADMAP's middleware references use —
// state that must survive a crash is a sequence of re-playable values, not
// live pointers — and keeps the format deliberately simple:
//
//   - Records are length+CRC framed: a 4-byte little-endian payload length,
//     a 4-byte little-endian CRC32C (Castagnoli) of the payload, then the
//     payload. Framing errors are therefore always detectable, and a torn
//     tail (a crash mid-write) is truncated away on Open, never replayed.
//   - Records live in segment files named seg-<firstseq>.wal, rotated once a
//     segment passes Options.SegmentBytes. Sequence numbers are dense from 1
//     and implicit: a segment's name carries its first record's seq, and
//     records within are consecutive.
//   - A snapshot (snap-<seq>.snap, same framing, single record) captures the
//     owner's full state as of record seq. Writing one compacts the log:
//     every segment it covers is deleted and a fresh segment starts, so disk
//     usage is bounded by snapshot cadence rather than history length.
//   - Fsync policy is configurable: SyncAlways pays one fsync per append
//     (acknowledged writes survive power loss), SyncInterval batches fsyncs
//     on a timer (acknowledged writes survive SIGKILL, up to Interval lost
//     on power cut), SyncNever leaves flushing to the kernel entirely.
//
// Open returns both the writable log and a Recovered view of everything
// durable: the newest valid snapshot (corrupt snapshots fall back to older
// ones) plus every decodable record after it, with torn or corrupt tails
// truncated and counted. Recovery is deterministic: two Opens of the same
// directory yield byte-identical state.
//
// The log is safe for use by one goroutine at a time; owners (the scheduler
// journal) already serialize under their own mutex.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy int

const (
	// SyncInterval batches fsyncs: an append syncs only when Interval has
	// passed since the last sync. The default.
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs every append before it returns.
	SyncAlways
	// SyncNever never fsyncs; the kernel flushes on its own schedule.
	SyncNever
)

var syncNames = map[SyncPolicy]string{SyncInterval: "interval", SyncAlways: "always", SyncNever: "never"}

// String renders the policy's flag form (always | interval | never).
func (p SyncPolicy) String() string {
	if n, ok := syncNames[p]; ok {
		return n
	}
	return "unknown"
}

// ParseSyncPolicy inverts String, for flag parsing.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	for p, n := range syncNames {
		if n == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or never)", s)
}

// Options configures a log. The zero value is usable: interval fsync every
// 100ms, 4 MiB segments.
type Options struct {
	// Fsync is the sync policy for appends and snapshots.
	Fsync SyncPolicy
	// Interval is the SyncInterval batching period; 0 defaults to 100ms.
	Interval time.Duration
	// SegmentBytes rotates the active segment once it passes this size;
	// 0 defaults to 4 MiB.
	SegmentBytes int64
}

const (
	defaultInterval     = 100 * time.Millisecond
	defaultSegmentBytes = 4 << 20
	headerSize          = 8       // 4B length + 4B CRC32C
	maxRecordBytes      = 1 << 28 // framing sanity bound: larger lengths are corruption
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Recovered is everything durable found in the directory at Open.
type Recovered struct {
	// Snapshot is the newest valid snapshot's payload, nil when none.
	Snapshot []byte
	// SnapshotSeq is the record seq the snapshot covers (records 1..SnapshotSeq).
	SnapshotSeq uint64
	// Records are the decodable records after the snapshot, in order; the
	// first has seq SnapshotSeq+1.
	Records [][]byte
	// TruncatedBytes counts bytes dropped from a torn or corrupt tail.
	TruncatedBytes int64
	// DroppedSegments counts whole segments abandoned past a corrupt record.
	DroppedSegments int
}

// Empty reports a fresh directory: no snapshot and no records.
func (r *Recovered) Empty() bool { return r.Snapshot == nil && len(r.Records) == 0 }

// Stats is a point-in-time counter snapshot for metrics and /statusz.
type Stats struct {
	Appends       int64  // records appended this process
	AppendedBytes int64  // payload bytes appended this process
	Fsyncs        int64  // fsync calls this process
	Rotations     int64  // segment rotations this process
	Snapshots     int64  // snapshots written this process
	Segments      int    // live segment files
	LastSeq       uint64 // seq of the newest record (0 = none)
	SnapshotSeq   uint64 // seq covered by the newest snapshot (0 = none)
}

// Log is an open write-ahead log directory.
type Log struct {
	dir string
	opt Options

	f        *os.File // active segment
	segBytes int64    // active segment size
	segments []string // live segment paths, oldest first (incl. active)

	next     uint64 // seq the next Append assigns
	snapSeq  uint64
	lastSync time.Time

	stats Stats
}

// Open opens (creating if needed) the log directory, recovers its durable
// state, truncates any torn tail, compacts segments fully covered by the
// newest valid snapshot, and readies the newest segment for appending.
func Open(dir string, opt Options) (*Log, *Recovered, error) {
	if opt.Interval <= 0 {
		opt.Interval = defaultInterval
	}
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = defaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, opt: opt, lastSync: time.Now()}
	rec, err := l.recover()
	if err != nil {
		return nil, nil, err
	}
	return l, rec, nil
}

// segPath / snapPath name files by the 16-hex-digit seq in their stem.
func (l *Log) segPath(firstSeq uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("seg-%016x.wal", firstSeq))
}

func (l *Log) snapPath(seq uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("snap-%016x.snap", seq))
}

// parseSeq extracts the seq from a "prefix-<16 hex>.<ext>" name.
func parseSeq(name, prefix, ext string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ext) {
		return 0, false
	}
	hexpart := strings.TrimSuffix(strings.TrimPrefix(name, prefix), ext)
	n, err := strconv.ParseUint(hexpart, 16, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// recover scans the directory: newest valid snapshot, then every decodable
// record after it, truncating torn tails and compacting covered segments.
func (l *Log) recover() (*Recovered, error) {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segSeqs, snapSeqs []uint64
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), "seg-", ".wal"); ok {
			segSeqs = append(segSeqs, seq)
		}
		if seq, ok := parseSeq(e.Name(), "snap-", ".snap"); ok {
			snapSeqs = append(snapSeqs, seq)
		}
	}
	sort.Slice(segSeqs, func(i, j int) bool { return segSeqs[i] < segSeqs[j] })
	sort.Slice(snapSeqs, func(i, j int) bool { return snapSeqs[i] < snapSeqs[j] })

	rec := &Recovered{}
	// Newest decodable snapshot wins; corrupt ones (a crash mid-rename
	// cannot produce these, but disk faults can) fall back to older.
	for i := len(snapSeqs) - 1; i >= 0; i-- {
		payload, ok := readSnapshot(l.snapPath(snapSeqs[i]))
		if ok {
			rec.Snapshot, rec.SnapshotSeq = payload, snapSeqs[i]
			break
		}
	}
	l.snapSeq = rec.SnapshotSeq

	// Scan segments in order, collecting records past the snapshot. A
	// corrupt or torn record truncates its segment there and drops every
	// later segment: recovery is the longest valid durable prefix.
	seq := rec.SnapshotSeq
	if len(segSeqs) > 0 {
		if segSeqs[0] > rec.SnapshotSeq+1 {
			return nil, fmt.Errorf("wal: segment gap: snapshot covers through %d, oldest segment starts at %d",
				rec.SnapshotSeq, segSeqs[0])
		}
		seq = segSeqs[0] - 1
	}
	stop := false
	for _, first := range segSeqs {
		if stop {
			if err := os.Remove(l.segPath(first)); err != nil {
				return nil, fmt.Errorf("wal: drop segment past corruption: %w", err)
			}
			rec.DroppedSegments++
			continue
		}
		if first != seq+1 {
			return nil, fmt.Errorf("wal: segment gap: have records through %d, next segment starts at %d", seq, first)
		}
		path := l.segPath(first)
		_, truncated, err := scanSegment(path, func(payload []byte) {
			seq++
			if seq > rec.SnapshotSeq {
				rec.Records = append(rec.Records, payload)
			}
		})
		if err != nil {
			return nil, err
		}
		if truncated > 0 {
			rec.TruncatedBytes += truncated
			stop = true // everything after a torn record is unusable
		}
		l.segments = append(l.segments, path)
	}
	l.next = seq + 1

	// Compact segments fully covered by the snapshot: a segment is covered
	// when the next segment starts at or below snapSeq+1.
	l.compactCovered()

	// Ready the active segment: reuse the newest, or start fresh.
	if len(l.segments) == 0 {
		if err := l.rotate(); err != nil {
			return nil, err
		}
	} else {
		active := l.segments[len(l.segments)-1]
		f, err := os.OpenFile(active, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: %w", err)
		}
		l.f, l.segBytes = f, st.Size()
	}
	l.stats.Segments = len(l.segments)
	l.stats.LastSeq = l.next - 1
	l.stats.SnapshotSeq = l.snapSeq
	return rec, nil
}

// scanSegment decodes records, calling fn per payload. On a torn or corrupt
// record it truncates the file at the last good offset and reports the
// dropped byte count.
func scanSegment(path string, fn func(payload []byte)) (records int, truncated int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: %w", err)
	}
	off := 0
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return records, 0, nil
		}
		if len(rest) < headerSize {
			break // torn header
		}
		n := binary.LittleEndian.Uint32(rest[0:4])
		crc := binary.LittleEndian.Uint32(rest[4:8])
		if n > maxRecordBytes || int(n) > len(rest)-headerSize {
			break // absurd length or torn payload
		}
		payload := rest[headerSize : headerSize+int(n)]
		if crc32.Checksum(payload, castagnoli) != crc {
			break // corrupt payload
		}
		fn(payload)
		records++
		off += headerSize + int(n)
	}
	truncated = int64(len(data) - off)
	if terr := os.Truncate(path, int64(off)); terr != nil {
		return records, truncated, fmt.Errorf("wal: truncate torn tail of %s: %w", path, terr)
	}
	return records, truncated, nil
}

// readSnapshot decodes a snapshot file (one framed record); ok=false on any
// framing or checksum error.
func readSnapshot(path string) (payload []byte, ok bool) {
	data, err := os.ReadFile(path)
	if err != nil || len(data) < headerSize {
		return nil, false
	}
	n := binary.LittleEndian.Uint32(data[0:4])
	crc := binary.LittleEndian.Uint32(data[4:8])
	if n > maxRecordBytes || int(n) != len(data)-headerSize {
		return nil, false
	}
	payload = data[headerSize:]
	if crc32.Checksum(payload, castagnoli) != crc {
		return nil, false
	}
	return payload, true
}

// frame encodes one record: header then payload.
func frame(payload []byte) []byte {
	buf := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	copy(buf[headerSize:], payload)
	return buf
}

// Append writes one record, honoring the fsync policy, and returns its seq.
func (l *Log) Append(payload []byte) (uint64, error) {
	if l.f == nil {
		return 0, fmt.Errorf("wal: log closed")
	}
	if len(payload) > maxRecordBytes {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds the %d-byte bound", len(payload), maxRecordBytes)
	}
	if l.segBytes >= l.opt.SegmentBytes {
		if err := l.rotate(); err != nil {
			return 0, err
		}
	}
	buf := frame(payload)
	if _, err := l.f.Write(buf); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.segBytes += int64(len(buf))
	seq := l.next
	l.next++
	l.stats.Appends++
	l.stats.AppendedBytes += int64(len(payload))
	l.stats.LastSeq = seq
	switch l.opt.Fsync {
	case SyncAlways:
		if err := l.sync(); err != nil {
			return 0, err
		}
	case SyncInterval:
		if time.Since(l.lastSync) >= l.opt.Interval {
			if err := l.sync(); err != nil {
				return 0, err
			}
		}
	}
	return seq, nil
}

// Sync forces an fsync of the active segment regardless of policy.
func (l *Log) Sync() error {
	if l.f == nil {
		return fmt.Errorf("wal: log closed")
	}
	return l.sync()
}

func (l *Log) sync() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.stats.Fsyncs++
	l.lastSync = time.Now()
	return nil
}

// syncDir fsyncs the directory so renames and new files are durable.
func (l *Log) syncDir() error {
	if l.opt.Fsync == SyncNever {
		return nil
	}
	d, err := os.Open(l.dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: fsync dir: %w", err)
	}
	l.stats.Fsyncs++
	return nil
}

// rotate closes the active segment (syncing it unless SyncNever) and starts
// a fresh one whose first record will be l.next.
func (l *Log) rotate() error {
	if l.f != nil {
		if l.opt.Fsync != SyncNever {
			if err := l.sync(); err != nil {
				return err
			}
		}
		if err := l.f.Close(); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		l.f = nil
		l.stats.Rotations++
	}
	path := l.segPath(l.next)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.f, l.segBytes = f, 0
	l.segments = append(l.segments, path)
	l.stats.Segments = len(l.segments)
	return l.syncDir()
}

// Snapshot atomically writes state as a snapshot covering every record
// appended so far, then compacts: covered segments are deleted, older
// snapshots removed, and a fresh segment started.
func (l *Log) Snapshot(state []byte) error {
	if l.f == nil {
		return fmt.Errorf("wal: log closed")
	}
	seq := l.next - 1
	path := l.snapPath(seq)
	tmp := path + ".tmp"
	buf := frame(state)
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if l.opt.Fsync != SyncNever {
		f, err := os.OpenFile(tmp, os.O_WRONLY, 0o644)
		if err == nil {
			serr := f.Sync()
			f.Close()
			if serr != nil {
				return fmt.Errorf("wal: snapshot fsync: %w", serr)
			}
			l.stats.Fsyncs++
		}
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := l.syncDir(); err != nil {
		return err
	}
	oldSnap := l.snapSeq
	l.snapSeq = seq
	l.stats.Snapshots++
	l.stats.SnapshotSeq = seq

	// Compact: the snapshot covers everything appended, so every segment is
	// disposable. Rotate to a fresh segment first (so the directory always
	// has an active segment), then drop covered ones and stale snapshots.
	if err := l.rotate(); err != nil {
		return err
	}
	l.compactCovered()
	if oldSnap > 0 && oldSnap != seq {
		_ = os.Remove(l.snapPath(oldSnap))
	}
	l.stats.Segments = len(l.segments)
	return nil
}

// compactCovered deletes segments every record of which is covered by the
// current snapshot: segment i is covered when segment i+1 starts at or
// below snapSeq+1. The active (last) segment is never deleted.
func (l *Log) compactCovered() {
	if l.snapSeq == 0 {
		return
	}
	kept := l.segments[:0]
	for i, path := range l.segments {
		if i+1 < len(l.segments) {
			nextFirst, ok := parseSeq(filepath.Base(l.segments[i+1]), "seg-", ".wal")
			if ok && nextFirst <= l.snapSeq+1 {
				_ = os.Remove(path)
				continue
			}
		}
		kept = append(kept, path)
	}
	l.segments = append([]string(nil), kept...)
	l.stats.Segments = len(l.segments)
}

// Stats returns the log's counter snapshot.
func (l *Log) Stats() Stats { return l.stats }

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// LastSeq returns the seq of the newest appended record (0 when empty).
func (l *Log) LastSeq() uint64 { return l.next - 1 }

// SnapshotSeq returns the seq covered by the newest snapshot (0 when none).
func (l *Log) SnapshotSeq() uint64 { return l.snapSeq }

// Close syncs (unless SyncNever) and closes the active segment. The log is
// unusable afterwards.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	var err error
	if l.opt.Fsync != SyncNever {
		err = l.sync()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}
