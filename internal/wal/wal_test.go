package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func mustOpen(t *testing.T, dir string, opt Options) (*Log, *Recovered) {
	t.Helper()
	l, rec, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l, rec
}

func appendN(t *testing.T, l *Log, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("record-%04d", i))); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
	}
}

func wantRecords(t *testing.T, rec *Recovered, from, n int) {
	t.Helper()
	if len(rec.Records) != n {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), n)
	}
	for i, p := range rec.Records {
		want := fmt.Sprintf("record-%04d", from+i)
		if string(p) != want {
			t.Fatalf("record %d = %q, want %q", i, p, want)
		}
	}
}

func TestAppendReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rec := mustOpen(t, dir, Options{})
	if !rec.Empty() {
		t.Fatalf("fresh dir not empty: %+v", rec)
	}
	appendN(t, l, 0, 50)
	if l.LastSeq() != 50 {
		t.Fatalf("LastSeq = %d, want 50", l.LastSeq())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, rec2 := mustOpen(t, dir, Options{})
	defer l2.Close()
	wantRecords(t, rec2, 0, 50)
	if rec2.TruncatedBytes != 0 || rec2.SnapshotSeq != 0 {
		t.Fatalf("unexpected recovery state: %+v", rec2)
	}
	// Appends continue the sequence.
	seq, err := l2.Append([]byte("record-0050"))
	if err != nil || seq != 51 {
		t.Fatalf("Append after reopen = %d, %v; want 51", seq, err)
	}
}

func TestTornTailTruncation(t *testing.T) {
	cases := []struct {
		name string
		tear func(t *testing.T, path string)
	}{
		{"torn-header", func(t *testing.T, path string) { appendBytes(t, path, []byte{0x01, 0x02, 0x03}) }},
		{"torn-payload", func(t *testing.T, path string) {
			// A full header promising 100 bytes, then only 5.
			appendBytes(t, path, frame(bytes.Repeat([]byte{'x'}, 100))[:headerSize+5])
		}},
		{"corrupt-crc", func(t *testing.T, path string) {
			buf := frame([]byte("valid-payload"))
			buf[4] ^= 0xff
			appendBytes(t, path, buf)
		}},
		{"absurd-length", func(t *testing.T, path string) {
			buf := frame([]byte("x"))
			buf[3] = 0xff // length claims > maxRecordBytes
			appendBytes(t, path, buf)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			l, _ := mustOpen(t, dir, Options{Fsync: SyncNever})
			appendN(t, l, 0, 10)
			seg := l.segments[len(l.segments)-1]
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			tc.tear(t, seg)
			l2, rec := mustOpen(t, dir, Options{})
			defer l2.Close()
			wantRecords(t, rec, 0, 10)
			if rec.TruncatedBytes == 0 {
				t.Fatal("expected torn-tail truncation")
			}
			// The tail is gone for good: append, reopen, everything decodes.
			appendN(t, l2, 10, 5)
			l2.Close()
			l3, rec3 := mustOpen(t, dir, Options{})
			defer l3.Close()
			wantRecords(t, rec3, 0, 15)
			if rec3.TruncatedBytes != 0 {
				t.Fatalf("second recovery still truncating: %+v", rec3)
			}
		})
	}
}

func appendBytes(t *testing.T, path string, b []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

func TestSegmentRotationAndRecovery(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{SegmentBytes: 64}) // a few records per segment
	appendN(t, l, 0, 40)
	if got := l.Stats().Segments; got < 5 {
		t.Fatalf("only %d segments after 40 appends at 64-byte rotation", got)
	}
	l.Close()
	l2, rec := mustOpen(t, dir, Options{SegmentBytes: 64})
	defer l2.Close()
	wantRecords(t, rec, 0, 40)
}

func TestTornMiddleSegmentDropsLaterOnes(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{SegmentBytes: 64, Fsync: SyncNever})
	appendN(t, l, 0, 40)
	segs := append([]string(nil), l.segments...)
	l.Close()
	// Corrupt a record in the middle segment: recovery keeps the prefix and
	// abandons every later segment.
	mid := segs[len(segs)/2]
	data, err := os.ReadFile(mid)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(mid, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, rec := mustOpen(t, dir, Options{SegmentBytes: 64})
	defer l2.Close()
	if rec.DroppedSegments == 0 || rec.TruncatedBytes == 0 {
		t.Fatalf("expected dropped segments and truncation: %+v", rec)
	}
	if len(rec.Records) == 0 || len(rec.Records) >= 40 {
		t.Fatalf("recovered %d records, want a strict non-empty prefix of 40", len(rec.Records))
	}
	wantRecords(t, rec, 0, len(rec.Records))
	// The log continues from the recovered prefix.
	seq, err := l2.Append([]byte("after"))
	if err != nil || seq != uint64(len(rec.Records))+1 {
		t.Fatalf("Append = %d, %v; want %d", seq, err, len(rec.Records)+1)
	}
}

func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{SegmentBytes: 64})
	appendN(t, l, 0, 30)
	if err := l.Snapshot([]byte("state@30")); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Segments; got != 1 {
		t.Fatalf("%d segments after snapshot, want 1 (fresh active)", got)
	}
	appendN(t, l, 30, 10)
	l.Close()

	l2, rec := mustOpen(t, dir, Options{SegmentBytes: 64})
	defer l2.Close()
	if string(rec.Snapshot) != "state@30" || rec.SnapshotSeq != 30 {
		t.Fatalf("snapshot = %q @ %d, want state@30 @ 30", rec.Snapshot, rec.SnapshotSeq)
	}
	wantRecords(t, rec, 30, 10)
	if l2.LastSeq() != 40 {
		t.Fatalf("LastSeq = %d, want 40", l2.LastSeq())
	}
}

func TestSecondSnapshotReplacesFirst(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	appendN(t, l, 0, 10)
	if err := l.Snapshot([]byte("state@10")); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 10, 10)
	if err := l.Snapshot([]byte("state@20")); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 20, 5)
	l.Close()
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if len(snaps) != 1 {
		t.Fatalf("%d snapshot files, want 1 (older compacted away)", len(snaps))
	}
	l2, rec := mustOpen(t, dir, Options{})
	defer l2.Close()
	if string(rec.Snapshot) != "state@20" || rec.SnapshotSeq != 20 {
		t.Fatalf("snapshot = %q @ %d", rec.Snapshot, rec.SnapshotSeq)
	}
	wantRecords(t, rec, 20, 5)
}

func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	appendN(t, l, 0, 10)
	if err := l.Snapshot([]byte("state@10")); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 10, 10)
	l.Close()
	// Plant a newer, corrupt snapshot claiming to cover seq 20.
	bad := frame([]byte("state@20"))
	bad[4] ^= 0xff
	if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("snap-%016x.snap", 20)), bad, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, rec := mustOpen(t, dir, Options{})
	defer l2.Close()
	if string(rec.Snapshot) != "state@10" || rec.SnapshotSeq != 10 {
		t.Fatalf("fallback snapshot = %q @ %d, want state@10 @ 10", rec.Snapshot, rec.SnapshotSeq)
	}
	wantRecords(t, rec, 10, 10)
}

func TestSyncPolicies(t *testing.T) {
	for _, p := range []SyncPolicy{SyncAlways, SyncInterval, SyncNever} {
		parsed, err := ParseSyncPolicy(p.String())
		if err != nil || parsed != p {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", p.String(), parsed, err)
		}
	}
	if _, err := ParseSyncPolicy("bogus"); err == nil {
		t.Fatal("ParseSyncPolicy accepted bogus")
	}

	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Fsync: SyncAlways})
	appendN(t, l, 0, 5)
	if got := l.Stats().Fsyncs; got < 5 {
		t.Fatalf("SyncAlways made %d fsyncs over 5 appends", got)
	}
	l.Close()

	dir2 := t.TempDir()
	l2, _ := mustOpen(t, dir2, Options{Fsync: SyncNever})
	appendN(t, l2, 0, 5)
	if got := l2.Stats().Fsyncs; got != 0 {
		t.Fatalf("SyncNever made %d fsyncs", got)
	}
	l2.Close()

	dir3 := t.TempDir()
	l3, _ := mustOpen(t, dir3, Options{Fsync: SyncInterval, Interval: time.Hour})
	appendN(t, l3, 0, 50)
	if got := l3.Stats().Fsyncs; got > 1 {
		t.Fatalf("SyncInterval(1h) made %d fsyncs over 50 quick appends", got)
	}
	l3.Close()
}

func TestStatsAndEmptyPayload(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	if seq, err := l.Append(nil); err != nil || seq != 1 {
		t.Fatalf("empty append = %d, %v", seq, err)
	}
	st := l.Stats()
	if st.Appends != 1 || st.AppendedBytes != 0 || st.LastSeq != 1 {
		t.Fatalf("stats = %+v", st)
	}
	l.Close()
	l2, rec := mustOpen(t, dir, Options{})
	defer l2.Close()
	if len(rec.Records) != 1 || len(rec.Records[0]) != 0 {
		t.Fatalf("empty record not recovered: %+v", rec)
	}
}

func TestClosedLogRefusesWrites(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	l.Close()
	if _, err := l.Append([]byte("x")); err == nil {
		t.Fatal("Append on closed log succeeded")
	}
	if err := l.Snapshot([]byte("x")); err == nil {
		t.Fatal("Snapshot on closed log succeeded")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}
