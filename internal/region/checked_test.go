package region

import (
	"strings"
	"testing"

	"indexlaunch/internal/domain"
)

func TestCheckedAccessorsInBounds(t *testing.T) {
	tree := grid2d(t, 4)
	blocks, _ := tree.PartitionBlock2D(tree.Root(), "b", 2, 2)
	sub := blocks.MustSubregion(domain.Pt2(0, 0))
	accF, err := CheckedFieldF64(sub, 0)
	if err != nil {
		t.Fatal(err)
	}
	accF.Set(domain.Pt2(1, 1), 5)
	if got := accF.Get(domain.Pt2(1, 1)); got != 5 {
		t.Errorf("round trip = %v", got)
	}
	accI, err := CheckedFieldI64(sub, 1)
	if err != nil {
		t.Fatal(err)
	}
	accI.Set(domain.Pt2(0, 1), 9)
	if got := accI.Get(domain.Pt2(0, 1)); got != 9 {
		t.Errorf("round trip = %v", got)
	}
}

func TestCheckedAccessorPanicsOutsideSubregion(t *testing.T) {
	tree := grid2d(t, 4)
	blocks, _ := tree.PartitionBlock2D(tree.Root(), "b", 2, 2)
	sub := blocks.MustSubregion(domain.Pt2(0, 0)) // covers [0,1]x[0,1]
	acc, err := CheckedFieldF64(sub, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("out-of-subregion write should panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "outside region") {
			t.Errorf("panic message: %v", r)
		}
	}()
	// Point (3,3) is inside the ROOT domain (raw accessors would silently
	// clobber a neighbor's tile) but outside this subregion.
	acc.Set(domain.Pt2(3, 3), 1)
}

func TestCheckedAccessorPanicsOnRead(t *testing.T) {
	tree := grid2d(t, 4)
	blocks, _ := tree.PartitionBlock2D(tree.Root(), "b", 2, 2)
	sub := blocks.MustSubregion(domain.Pt2(1, 1))
	acc, err := CheckedFieldI64(sub, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-subregion read should panic")
		}
	}()
	_ = acc.Get(domain.Pt2(0, 0))
}

func TestCheckedAccessorFieldErrors(t *testing.T) {
	tree := grid2d(t, 2)
	if _, err := CheckedFieldF64(tree.Root(), 99); err == nil {
		t.Error("missing field should error")
	}
	if _, err := CheckedFieldI64(tree.Root(), 0); err == nil {
		t.Error("kind mismatch should error")
	}
}
