package region

import (
	"fmt"
	"sync"
	"sync/atomic"

	"indexlaunch/internal/domain"
)

// TreeID identifies a region tree (a root collection and all of its views).
type TreeID uint32

var nextTreeID atomic.Uint32

// Tree is a region tree: one root collection, its field space, and the
// physical storage for every field. All logical regions of the tree are
// views onto this storage.
type Tree struct {
	ID     TreeID
	Name   string
	Domain domain.Domain // the root index space
	Fields *FieldSpace

	root *Region

	mu     sync.Mutex
	dataMu sync.RWMutex
	f64    map[FieldID][]float64
	i64    map[FieldID][]int64

	nextPartition atomic.Uint32
	nextRegion    atomic.Uint32
}

// NewTree creates a region tree with allocated storage for every field.
// The root domain must be dense (storage is linearized over its bounds).
func NewTree(name string, dom domain.Domain, fields *FieldSpace) (*Tree, error) {
	if dom.Sparse() {
		return nil, fmt.Errorf("region: root domain of tree %q must be dense", name)
	}
	if dom.Empty() {
		return nil, fmt.Errorf("region: root domain of tree %q is empty", name)
	}
	t := &Tree{
		ID:     TreeID(nextTreeID.Add(1)),
		Name:   name,
		Domain: dom,
		Fields: fields,
		f64:    map[FieldID][]float64{},
		i64:    map[FieldID][]int64{},
	}
	vol := dom.Volume()
	for _, f := range fields.Fields() {
		switch f.Kind {
		case F64:
			t.f64[f.ID] = make([]float64, vol)
		case I64:
			t.i64[f.ID] = make([]int64, vol)
		default:
			return nil, fmt.Errorf("region: field %q has unsupported kind %v", f.Name, f.Kind)
		}
	}
	t.root = &Region{ID: RegionID{Tree: t.ID, Index: 0}, Tree: t, Domain: dom, Name: name}
	return t, nil
}

// MustNewTree is NewTree that panics on error.
func MustNewTree(name string, dom domain.Domain, fields *FieldSpace) *Tree {
	t, err := NewTree(name, dom, fields)
	if err != nil {
		panic(err)
	}
	return t
}

// Root returns the root logical region covering the whole collection.
func (t *Tree) Root() *Region { return t.root }

// RegionID is a stable identifier for a logical region within its tree.
// Identical region-tree construction sequences yield identical IDs, which is
// what lets replicated (DCR) shards name regions without communication.
type RegionID struct {
	Tree  TreeID
	Index uint32
}

func (id RegionID) String() string { return fmt.Sprintf("r%d.%d", id.Tree, id.Index) }

// Region is a logical region: a view of a subset of a tree's collection.
type Region struct {
	ID     RegionID
	Tree   *Tree
	Domain domain.Domain
	Name   string

	intervalsOnce sync.Once
	intervals     []Interval
}

// Volume returns the number of objects in the region.
func (r *Region) Volume() int64 { return r.Domain.Volume() }

// Intervals returns the sorted linearized interval view of the region over
// the root domain. The result is computed once and cached; callers must not
// mutate it.
func (r *Region) Intervals() []Interval {
	r.intervalsOnce.Do(func() {
		r.intervals = IntervalsOf(r.Domain, r.Tree.Domain.Bounds())
	})
	return r.intervals
}

// Overlaps reports whether two regions can share data: they must be views of
// the same tree with intersecting point sets.
func (r *Region) Overlaps(s *Region) bool {
	if r.Tree != s.Tree {
		return false
	}
	return IntervalsOverlap(r.Intervals(), s.Intervals())
}

func (r *Region) String() string {
	if r.Name != "" {
		return fmt.Sprintf("%s(%s)", r.Name, r.ID)
	}
	return r.ID.String()
}

func (t *Tree) newRegion(dom domain.Domain, name string) *Region {
	return &Region{
		ID:     RegionID{Tree: t.ID, Index: t.nextRegion.Add(1)},
		Tree:   t,
		Domain: dom,
		Name:   name,
	}
}
