package region

import (
	"fmt"
	"sort"

	"indexlaunch/internal/domain"
)

// PartitionID identifies a partition within its tree; like RegionID it is
// deterministic across replicated construction.
type PartitionID struct {
	Tree  TreeID
	Index uint32
}

func (id PartitionID) String() string { return fmt.Sprintf("p%d.%d", id.Tree, id.Index) }

// Partition divides a region into subregions indexed by a color space
// (paper §2). A partition is disjoint when no object appears in more than
// one subregion, and complete when every parent object appears in at least
// one. Aliased (non-disjoint) partitions — e.g. halo partitions — are legal
// views but never satisfy write-privilege self-checks.
type Partition struct {
	ID         PartitionID
	Parent     *Region
	ColorSpace domain.Domain
	Name       string

	children map[domain.Point]*Region
	disjoint bool
	complete bool
}

// Disjoint reports whether the partition's subregions are pairwise disjoint.
// Disjointness is determined at construction time, matching the paper's
// assumption that "the compiler and runtime have a procedure for determining
// the disjointness of partitions".
func (p *Partition) Disjoint() bool { return p.disjoint }

// Complete reports whether the subregions cover the parent region.
func (p *Partition) Complete() bool { return p.complete }

// Subregion returns the subregion for the given color. Colors outside the
// color space return an error.
func (p *Partition) Subregion(color domain.Point) (*Region, error) {
	r, ok := p.children[color]
	if !ok {
		return nil, fmt.Errorf("region: partition %s has no subregion for color %v", p.ID, color)
	}
	return r, nil
}

// MustSubregion is Subregion that panics on unknown colors.
func (p *Partition) MustSubregion(color domain.Point) *Region {
	r, err := p.Subregion(color)
	if err != nil {
		panic(err)
	}
	return r
}

// Volume returns the number of subregions.
func (p *Partition) Volume() int64 { return p.ColorSpace.Volume() }

func (p *Partition) String() string {
	kind := "aliased"
	if p.disjoint {
		kind = "disjoint"
	}
	if p.Name != "" {
		return fmt.Sprintf("%s(%s,%s)", p.Name, p.ID, kind)
	}
	return fmt.Sprintf("%s(%s)", p.ID, kind)
}

// Coloring maps each color of a color space to the domain of the subregion
// it names. It is the fully general partitioning input; the convenience
// constructors below build colorings for the common structured cases.
type Coloring map[domain.Point]domain.Domain

// PartitionByColoring creates a partition of parent from an explicit
// coloring. Every colored domain must lie inside the parent region.
// Disjointness and completeness are computed exactly from the coloring.
func (t *Tree) PartitionByColoring(parent *Region, name string, colorSpace domain.Domain, coloring Coloring) (*Partition, error) {
	if parent.Tree != t {
		return nil, fmt.Errorf("region: parent %s is not in tree %q", parent, t.Name)
	}
	p := &Partition{
		ID:         PartitionID{Tree: t.ID, Index: t.nextPartition.Add(1)},
		Parent:     parent,
		ColorSpace: colorSpace,
		Name:       name,
		children:   make(map[domain.Point]*Region, colorSpace.Volume()),
	}
	var err error
	colorSpace.Each(func(c domain.Point) bool {
		dom, ok := coloring[c]
		if !ok {
			dom = domain.FromPoints(nil)
		}
		var sub *Region
		sub, err = t.makeSubregion(parent, dom, fmt.Sprintf("%s[%v]", name, c))
		if err != nil {
			return false
		}
		p.children[c] = sub
		return true
	})
	if err != nil {
		return nil, err
	}
	p.disjoint, p.complete = p.computeStructure()
	return p, nil
}

func (t *Tree) makeSubregion(parent *Region, dom domain.Domain, name string) (*Region, error) {
	if !dom.Empty() {
		inParent := true
		dom.Each(func(pt domain.Point) bool {
			if !parent.Domain.Contains(pt) {
				inParent = false
				return false
			}
			return true
		})
		if !inParent {
			return nil, fmt.Errorf("region: subregion %q escapes parent %s", name, parent)
		}
	}
	return t.newRegion(dom, name), nil
}

// computeStructure determines disjointness and completeness exactly using
// the linearized interval views of the children.
func (p *Partition) computeStructure() (disjoint, complete bool) {
	var childVol, unionVol int64
	var all []Interval
	for _, sub := range p.children {
		ivs := sub.Intervals()
		childVol += IntervalsVolume(ivs)
		all = append(all, ivs...)
	}
	merged := normalizeIntervals(all)
	unionVol = IntervalsVolume(merged)
	disjoint = childVol == unionVol
	parentVol := IntervalsVolume(p.Parent.Intervals())
	complete = unionVol == parentVol
	return disjoint, complete
}

func normalizeIntervals(ivs []Interval) []Interval {
	if len(ivs) <= 1 {
		return ivs
	}
	sorted := make([]Interval, len(ivs))
	copy(sorted, ivs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Lo < sorted[j].Lo })
	out := sorted[:1]
	for _, iv := range sorted[1:] {
		last := &out[len(out)-1]
		if iv.Lo <= last.Hi { // strict overlap only (not mere adjacency)
			if iv.Hi > last.Hi {
				last.Hi = iv.Hi
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// PartitionEqual block-partitions a dense 1-d region into n near-equal
// contiguous subregions colored 0..n-1. The result is disjoint and complete.
func (t *Tree) PartitionEqual(parent *Region, name string, n int) (*Partition, error) {
	if parent.Domain.Sparse() || parent.Domain.Dim() != 1 {
		return nil, fmt.Errorf("region: PartitionEqual requires a dense 1-d parent, got %v", parent.Domain)
	}
	chunks := parent.Domain.Split(n)
	coloring := make(Coloring, n)
	for i, c := range chunks {
		coloring[domain.Pt1(int64(i))] = c
	}
	return t.PartitionByColoring(parent, name, domain.Range1(0, int64(n-1)), coloring)
}

// PartitionBlock2D partitions a dense 2-d region into an nx × ny grid of
// near-equal tiles colored by their grid position. Disjoint and complete.
func (t *Tree) PartitionBlock2D(parent *Region, name string, nx, ny int) (*Partition, error) {
	b := parent.Domain.Bounds()
	if parent.Domain.Sparse() || b.Dim() != 2 {
		return nil, fmt.Errorf("region: PartitionBlock2D requires a dense 2-d parent, got %v", parent.Domain)
	}
	coloring := Coloring{}
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			lox, hix := blockRange(b.Lo.C[0], b.Hi.C[0], nx, i)
			loy, hiy := blockRange(b.Lo.C[1], b.Hi.C[1], ny, j)
			coloring[domain.Pt2(int64(i), int64(j))] = domain.FromRect(domain.Rect2(lox, loy, hix, hiy))
		}
	}
	return t.PartitionByColoring(parent, name, domain.FromRect(domain.Rect2(0, 0, int64(nx-1), int64(ny-1))), coloring)
}

// PartitionBlock3D partitions a dense 3-d region into an nx × ny × nz grid.
func (t *Tree) PartitionBlock3D(parent *Region, name string, nx, ny, nz int) (*Partition, error) {
	b := parent.Domain.Bounds()
	if parent.Domain.Sparse() || b.Dim() != 3 {
		return nil, fmt.Errorf("region: PartitionBlock3D requires a dense 3-d parent, got %v", parent.Domain)
	}
	coloring := Coloring{}
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			for k := 0; k < nz; k++ {
				lox, hix := blockRange(b.Lo.C[0], b.Hi.C[0], nx, i)
				loy, hiy := blockRange(b.Lo.C[1], b.Hi.C[1], ny, j)
				loz, hiz := blockRange(b.Lo.C[2], b.Hi.C[2], nz, k)
				coloring[domain.Pt3(int64(i), int64(j), int64(k))] =
					domain.FromRect(domain.Rect3(lox, loy, loz, hix, hiy, hiz))
			}
		}
	}
	return t.PartitionByColoring(parent, name, domain.FromRect(domain.Rect3(0, 0, 0, int64(nx-1), int64(ny-1), int64(nz-1))), coloring)
}

// PartitionHalo2D builds the aliased "halo" partition matching a
// PartitionBlock2D of the same shape: each tile grown by radius cells in
// every direction, clamped to the parent bounds. Halo partitions of adjacent
// tiles overlap, so the result is aliased (the paper's stencil example §2).
func (t *Tree) PartitionHalo2D(parent *Region, name string, nx, ny int, radius int64) (*Partition, error) {
	b := parent.Domain.Bounds()
	if parent.Domain.Sparse() || b.Dim() != 2 {
		return nil, fmt.Errorf("region: PartitionHalo2D requires a dense 2-d parent, got %v", parent.Domain)
	}
	coloring := Coloring{}
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			lox, hix := blockRange(b.Lo.C[0], b.Hi.C[0], nx, i)
			loy, hiy := blockRange(b.Lo.C[1], b.Hi.C[1], ny, j)
			grown := domain.Rect2(lox-radius, loy-radius, hix+radius, hiy+radius).Intersect(b)
			coloring[domain.Pt2(int64(i), int64(j))] = domain.FromRect(grown)
		}
	}
	return t.PartitionByColoring(parent, name, domain.FromRect(domain.Rect2(0, 0, int64(nx-1), int64(ny-1))), coloring)
}

// PartitionHalo3D builds the aliased halo partition matching a
// PartitionBlock3D of the same shape: each brick grown by radius cells in
// every direction, clamped to the parent bounds.
func (t *Tree) PartitionHalo3D(parent *Region, name string, nx, ny, nz int, radius int64) (*Partition, error) {
	b := parent.Domain.Bounds()
	if parent.Domain.Sparse() || b.Dim() != 3 {
		return nil, fmt.Errorf("region: PartitionHalo3D requires a dense 3-d parent, got %v", parent.Domain)
	}
	coloring := Coloring{}
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			for k := 0; k < nz; k++ {
				lox, hix := blockRange(b.Lo.C[0], b.Hi.C[0], nx, i)
				loy, hiy := blockRange(b.Lo.C[1], b.Hi.C[1], ny, j)
				loz, hiz := blockRange(b.Lo.C[2], b.Hi.C[2], nz, k)
				grown := domain.Rect3(lox-radius, loy-radius, loz-radius,
					hix+radius, hiy+radius, hiz+radius).Intersect(b)
				coloring[domain.Pt3(int64(i), int64(j), int64(k))] = domain.FromRect(grown)
			}
		}
	}
	return t.PartitionByColoring(parent, name, domain.FromRect(domain.Rect3(0, 0, 0, int64(nx-1), int64(ny-1), int64(nz-1))), coloring)
}

// blockRange splits the inclusive range [lo, hi] into n near-equal blocks
// and returns the bounds of block i. Leading blocks absorb the remainder.
func blockRange(lo, hi int64, n, i int) (blo, bhi int64) {
	total := hi - lo + 1
	base := total / int64(n)
	rem := total % int64(n)
	start := lo + int64(i)*base + min64(int64(i), rem)
	size := base
	if int64(i) < rem {
		size++
	}
	return start, start + size - 1
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
