package region

import (
	"testing"

	"indexlaunch/internal/domain"
)

// buildPointerSetup creates a source collection of 12 elements in 3 blocks
// whose "ptr" field points into a 9-element target collection.
func buildPointerSetup(t *testing.T) (*Tree, *Partition, *Tree) {
	t.Helper()
	srcFields := MustFieldSpace(Field{ID: 0, Name: "ptr", Kind: I64})
	src := MustNewTree("src", domain.Range1(0, 11), srcFields)
	srcPart, err := src.PartitionEqual(src.Root(), "blocks", 3)
	if err != nil {
		t.Fatal(err)
	}
	tgtFields := MustFieldSpace(Field{ID: 0, Name: "v", Kind: F64})
	tgt := MustNewTree("tgt", domain.Range1(0, 8), tgtFields)

	// Block 0 (elems 0-3) points at {0,1}; block 1 at {1,2,3}; block 2 at
	// {8}.
	ptr := MustFieldI64(src.Root(), 0)
	vals := []int64{0, 1, 0, 1, 1, 2, 3, 1, 8, 8, 8, 8}
	for i, v := range vals {
		ptr.Set(domain.Pt1(int64(i)), v)
	}
	return src, srcPart, tgt
}

func TestPartitionImageI64(t *testing.T) {
	_, srcPart, tgt := buildPointerSetup(t)
	img, err := PartitionImageI64(tgt, "image", srcPart, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int64][]int64{
		0: {0, 1},
		1: {1, 2, 3},
		2: {8},
	}
	for c, elems := range want {
		sub := img.MustSubregion(domain.Pt1(c))
		if sub.Volume() != int64(len(elems)) {
			t.Errorf("color %d: volume = %d, want %d", c, sub.Volume(), len(elems))
		}
		for _, e := range elems {
			if !sub.Domain.Contains(domain.Pt1(e)) {
				t.Errorf("color %d: missing element %d", c, e)
			}
		}
	}
	// Images of blocks 0 and 1 overlap at element 1 → aliased.
	if img.Disjoint() {
		t.Error("overlapping images must make the partition aliased")
	}
}

func TestPartitionImageI64WithExclude(t *testing.T) {
	_, srcPart, tgt := buildPointerSetup(t)
	// Exclude partition: target block c = [3c, 3c+2].
	excl, err := tgt.PartitionEqual(tgt.Root(), "private", 3)
	if err != nil {
		t.Fatal(err)
	}
	img, err := PartitionImageI64(tgt, "ghost", srcPart, 0, excl)
	if err != nil {
		t.Fatal(err)
	}
	// Block 0's raw image is {0,1}; both lie in private block 0 → empty.
	if sub := img.MustSubregion(domain.Pt1(0)); !sub.Domain.Empty() {
		t.Errorf("color 0 ghost should be empty, got %v", sub.Domain)
	}
	// Block 1's raw image {1,2,3} minus private block 1 ([3,5]) = {1,2}.
	sub := img.MustSubregion(domain.Pt1(1))
	if sub.Volume() != 2 || !sub.Domain.Contains(domain.Pt1(1)) || !sub.Domain.Contains(domain.Pt1(2)) {
		t.Errorf("color 1 ghost = %v, want {1,2}", sub.Domain)
	}
	// Block 2's raw image {8} minus private block 2 ([6,8]) = empty.
	if sub := img.MustSubregion(domain.Pt1(2)); !sub.Domain.Empty() {
		t.Errorf("color 2 ghost should be empty, got %v", sub.Domain)
	}
}

func TestPartitionImageI64OutOfRange(t *testing.T) {
	src, srcPart, tgt := buildPointerSetup(t)
	ptr := MustFieldI64(src.Root(), 0)
	ptr.Set(domain.Pt1(0), 99) // outside target
	if _, err := PartitionImageI64(tgt, "bad", srcPart, 0, nil); err == nil {
		t.Error("out-of-range pointer should error")
	}
}

func TestPartitionByFieldI64(t *testing.T) {
	fields := MustFieldSpace(
		Field{ID: 0, Name: "owner", Kind: I64},
		Field{ID: 1, Name: "v", Kind: F64},
	)
	tree := MustNewTree("owned", domain.Range1(0, 9), fields)
	owner := MustFieldI64(tree.Root(), 0)
	// Elements alternate between owners 0 and 1; element 9 belongs to 2.
	for i := int64(0); i < 9; i++ {
		owner.Set(domain.Pt1(i), i%2)
	}
	owner.Set(domain.Pt1(9), 2)

	p, err := tree.PartitionByFieldI64(tree.Root(), "byowner", domain.Range1(0, 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Disjoint() || !p.Complete() {
		t.Errorf("field partition: disjoint=%v complete=%v", p.Disjoint(), p.Complete())
	}
	if v := p.MustSubregion(domain.Pt1(0)).Volume(); v != 5 {
		t.Errorf("owner 0 volume = %d, want 5", v)
	}
	if v := p.MustSubregion(domain.Pt1(2)).Volume(); v != 1 {
		t.Errorf("owner 2 volume = %d, want 1", v)
	}
}

func TestPartitionByFieldI64BadColor(t *testing.T) {
	fields := MustFieldSpace(Field{ID: 0, Name: "owner", Kind: I64})
	tree := MustNewTree("owned", domain.Range1(0, 3), fields)
	MustFieldI64(tree.Root(), 0).Set(domain.Pt1(2), 7)
	if _, err := tree.PartitionByFieldI64(tree.Root(), "bad", domain.Range1(0, 1), 0); err == nil {
		t.Error("field value outside color space should error")
	}
}

func TestUnionPartitions(t *testing.T) {
	fields := MustFieldSpace(Field{ID: 0, Name: "v", Kind: F64})
	tree := MustNewTree("u", domain.Range1(0, 9), fields)
	a, err := tree.PartitionByColoring(tree.Root(), "a", domain.Range1(0, 1), Coloring{
		domain.Pt1(0): domain.Range1(0, 2),
		domain.Pt1(1): domain.Range1(5, 6),
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := tree.PartitionByColoring(tree.Root(), "b", domain.Range1(0, 1), Coloring{
		domain.Pt1(0): domain.Range1(2, 4),
		domain.Pt1(1): domain.Range1(7, 9),
	})
	if err != nil {
		t.Fatal(err)
	}
	u, err := UnionPartitions("a+b", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if v := u.MustSubregion(domain.Pt1(0)).Volume(); v != 5 { // 0-2 ∪ 2-4
		t.Errorf("color 0 union volume = %d, want 5", v)
	}
	if v := u.MustSubregion(domain.Pt1(1)).Volume(); v != 5 { // 5-6 ∪ 7-9
		t.Errorf("color 1 union volume = %d, want 5", v)
	}
}

func TestUnionPartitionsValidation(t *testing.T) {
	if _, err := UnionPartitions("none"); err == nil {
		t.Error("no operands should error")
	}
	fields := MustFieldSpace(Field{ID: 0, Name: "v", Kind: F64})
	t1 := MustNewTree("t1", domain.Range1(0, 9), fields)
	t2 := MustNewTree("t2", domain.Range1(0, 9), fields)
	a, _ := t1.PartitionEqual(t1.Root(), "a", 2)
	b, _ := t2.PartitionEqual(t2.Root(), "b", 2)
	if _, err := UnionPartitions("cross", a, b); err == nil {
		t.Error("operands from different trees should error")
	}
	c, _ := t1.PartitionEqual(t1.Root(), "c", 5)
	if _, err := UnionPartitions("shape", a, c); err == nil {
		t.Error("mismatched color spaces should error")
	}
}
