package region

import (
	"fmt"

	"indexlaunch/internal/domain"
)

// Dependent partitioning (paper §2, citing Treichler et al. [29]): deriving
// partitions from data rather than from index arithmetic. Two primitives
// cover the unstructured use cases in this repository:
//
//   - PartitionByFieldI64 colors each element by the value of one of its
//     int64 fields (e.g. a precomputed owner id).
//   - PartitionImageI64 partitions a *target* collection by the image of a
//     pointer field under an existing partition of a *source* collection —
//     how the circuit derives each piece's ghost nodes from its wires'
//     endpoint fields.

// PartitionByFieldI64 partitions parent by the value of the given int64
// field: element e lands in the subregion colored Pt1(field(e)). Colors
// outside colorSpace are an error. The result is always disjoint (each
// element has one field value) and complete over parent.
func (t *Tree) PartitionByFieldI64(parent *Region, name string, colorSpace domain.Domain, field FieldID) (*Partition, error) {
	acc, err := FieldI64(parent, field)
	if err != nil {
		return nil, err
	}
	buckets := map[domain.Point][]domain.Point{}
	var badColor *domain.Point
	parent.Domain.Each(func(p domain.Point) bool {
		c := domain.Pt1(acc.Get(p))
		if !colorSpace.Contains(c) {
			badColor = &c
			return false
		}
		buckets[c] = append(buckets[c], p)
		return true
	})
	if badColor != nil {
		return nil, fmt.Errorf("region: PartitionByFieldI64(%q): field value %v outside color space %v",
			name, *badColor, colorSpace)
	}
	coloring := Coloring{}
	for c, pts := range buckets {
		coloring[c] = domain.FromPoints(pts)
	}
	return t.PartitionByColoring(parent, name, colorSpace, coloring)
}

// PartitionImageI64 computes, for each color c of srcPart, the set of
// target elements pointed at by the given int64 field of the source
// subregion — the image partition image(srcPart, field) over target. Field
// values index the 1-d target collection. Images of different colors may
// overlap, so the result is typically aliased.
//
// The optional exclude partition subtracts exclude's subregion of the same
// color from each image — the standard "ghost = image minus private" idiom.
func PartitionImageI64(target *Tree, name string, srcPart *Partition, field FieldID, exclude *Partition) (*Partition, error) {
	if target.Domain.Dim() != 1 {
		return nil, fmt.Errorf("region: PartitionImageI64 requires a 1-d target collection")
	}
	coloring := Coloring{}
	var err error
	srcPart.ColorSpace.Each(func(c domain.Point) bool {
		var src *Region
		src, err = srcPart.Subregion(c)
		if err != nil {
			return false
		}
		var acc AccI64
		acc, err = FieldI64(src, field)
		if err != nil {
			return false
		}
		var excluded func(domain.Point) bool
		if exclude != nil {
			var ex *Region
			ex, err = exclude.Subregion(c)
			if err != nil {
				return false
			}
			excluded = ex.Domain.Contains
		} else {
			excluded = func(domain.Point) bool { return false }
		}
		seen := map[int64]bool{}
		var pts []domain.Point
		ok := true
		src.Domain.Each(func(p domain.Point) bool {
			v := acc.Get(p)
			tp := domain.Pt1(v)
			if !target.Domain.Contains(tp) {
				err = fmt.Errorf("region: PartitionImageI64(%q): field value %d outside target %v",
					name, v, target.Domain)
				ok = false
				return false
			}
			if !seen[v] && !excluded(tp) {
				seen[v] = true
				pts = append(pts, tp)
			}
			return true
		})
		if !ok {
			return false
		}
		coloring[c] = domain.FromPoints(pts)
		return true
	})
	if err != nil {
		return nil, err
	}
	return target.PartitionByColoring(target.Root(), name, srcPart.ColorSpace, coloring)
}

// UnionPartitions builds a partition whose subregion for each color is the
// union of the operands' subregions for that color. All operands must share
// a color space and partition the same tree. Used to form "private + ghost"
// views.
func UnionPartitions(name string, parts ...*Partition) (*Partition, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("region: UnionPartitions with no operands")
	}
	first := parts[0]
	tree := first.Parent.Tree
	for _, p := range parts[1:] {
		if p.Parent.Tree != tree {
			return nil, fmt.Errorf("region: UnionPartitions operands span trees %q and %q",
				tree.Name, p.Parent.Tree.Name)
		}
		if !p.ColorSpace.Eq(first.ColorSpace) {
			return nil, fmt.Errorf("region: UnionPartitions operands have mismatched color spaces")
		}
	}
	coloring := Coloring{}
	var err error
	first.ColorSpace.Each(func(c domain.Point) bool {
		var pts []domain.Point
		for _, p := range parts {
			var sub *Region
			sub, err = p.Subregion(c)
			if err != nil {
				return false
			}
			pts = append(pts, sub.Domain.Points()...)
		}
		coloring[c] = domain.FromPoints(pts)
		return true
	})
	if err != nil {
		return nil, err
	}
	return tree.PartitionByColoring(first.Parent, name, first.ColorSpace, coloring)
}
