// Package region implements the data model of the paper's programming model
// (§2): collections of objects organized as logical regions, partitions that
// name subsets of a collection (disjoint or aliased), and physical storage
// with typed field accessors.
//
// A region tree has a single root collection that owns the storage. Logical
// regions are views: a subset of the root index space plus the shared field
// space. Partitions group subregion views under a color space; different
// partitions of the same collection are different views onto the same
// underlying data.
package region

import "fmt"

// FieldID names a field within a field space.
type FieldID uint32

// Kind is the element type of a field.
type Kind uint8

// Supported field element kinds.
const (
	F64 Kind = iota // float64 elements
	I64             // int64 elements
)

// String returns the Go-like name of the kind.
func (k Kind) String() string {
	switch k {
	case F64:
		return "float64"
	case I64:
		return "int64"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Field describes one field of a field space.
type Field struct {
	ID   FieldID
	Name string
	Kind Kind
}

// FieldSpace is an ordered set of fields shared by every region in a tree.
type FieldSpace struct {
	fields []Field
	byID   map[FieldID]int
}

// NewFieldSpace returns a field space over the given fields. Field IDs must
// be unique.
func NewFieldSpace(fields ...Field) (*FieldSpace, error) {
	fs := &FieldSpace{byID: make(map[FieldID]int, len(fields))}
	for _, f := range fields {
		if _, dup := fs.byID[f.ID]; dup {
			return nil, fmt.Errorf("region: duplicate field id %d (%q)", f.ID, f.Name)
		}
		fs.byID[f.ID] = len(fs.fields)
		fs.fields = append(fs.fields, f)
	}
	return fs, nil
}

// MustFieldSpace is NewFieldSpace that panics on error; intended for
// statically known field lists.
func MustFieldSpace(fields ...Field) *FieldSpace {
	fs, err := NewFieldSpace(fields...)
	if err != nil {
		panic(err)
	}
	return fs
}

// Fields returns the fields in declaration order.
func (fs *FieldSpace) Fields() []Field { return fs.fields }

// Lookup returns the field with the given ID.
func (fs *FieldSpace) Lookup(id FieldID) (Field, bool) {
	i, ok := fs.byID[id]
	if !ok {
		return Field{}, false
	}
	return fs.fields[i], true
}

// Has reports whether the field space contains the given field ID.
func (fs *FieldSpace) Has(id FieldID) bool {
	_, ok := fs.byID[id]
	return ok
}
