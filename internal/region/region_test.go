package region

import (
	"testing"

	"indexlaunch/internal/domain"
)

func grid2d(t *testing.T, n int64) *Tree {
	t.Helper()
	fs := MustFieldSpace(
		Field{ID: 0, Name: "val", Kind: F64},
		Field{ID: 1, Name: "cnt", Kind: I64},
	)
	tree, err := NewTree("grid", domain.FromRect(domain.Rect2(0, 0, n-1, n-1)), fs)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestNewTreeValidation(t *testing.T) {
	fs := MustFieldSpace(Field{ID: 0, Name: "v", Kind: F64})
	if _, err := NewTree("sparse", domain.FromPoints([]domain.Point{domain.Pt1(1)}), fs); err == nil {
		t.Error("sparse root should be rejected")
	}
	if _, err := NewTree("empty", domain.Range1(0, -1), fs); err == nil {
		t.Error("empty root should be rejected")
	}
}

func TestFieldSpaceDuplicateID(t *testing.T) {
	_, err := NewFieldSpace(Field{ID: 3, Name: "a"}, Field{ID: 3, Name: "b"})
	if err == nil {
		t.Error("duplicate field id should error")
	}
}

func TestFieldSpaceLookup(t *testing.T) {
	fs := MustFieldSpace(Field{ID: 7, Name: "x", Kind: I64})
	f, ok := fs.Lookup(7)
	if !ok || f.Name != "x" || f.Kind != I64 {
		t.Errorf("Lookup = %+v, %v", f, ok)
	}
	if _, ok := fs.Lookup(8); ok {
		t.Error("missing field should not be found")
	}
	if !fs.Has(7) || fs.Has(8) {
		t.Error("Has wrong")
	}
}

func TestRootRegion(t *testing.T) {
	tree := grid2d(t, 4)
	root := tree.Root()
	if root.Volume() != 16 {
		t.Errorf("root volume = %d", root.Volume())
	}
	ivs := root.Intervals()
	if len(ivs) != 1 || ivs[0] != (Interval{0, 15}) {
		t.Errorf("root intervals = %v", ivs)
	}
}

func TestPartitionEqual(t *testing.T) {
	fs := MustFieldSpace(Field{ID: 0, Name: "v", Kind: F64})
	tree := MustNewTree("line", domain.Range1(0, 99), fs)
	p, err := tree.PartitionEqual(tree.Root(), "blocks", 4)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Disjoint() || !p.Complete() {
		t.Errorf("disjoint=%v complete=%v, want true/true", p.Disjoint(), p.Complete())
	}
	var total int64
	for i := int64(0); i < 4; i++ {
		sub := p.MustSubregion(domain.Pt1(i))
		if sub.Volume() != 25 {
			t.Errorf("block %d volume = %d", i, sub.Volume())
		}
		total += sub.Volume()
	}
	if total != 100 {
		t.Errorf("total = %d", total)
	}
	if _, err := p.Subregion(domain.Pt1(4)); err == nil {
		t.Error("out-of-space color should error")
	}
}

func TestPartitionBlock2D(t *testing.T) {
	tree := grid2d(t, 10)
	p, err := tree.PartitionBlock2D(tree.Root(), "tiles", 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Disjoint() || !p.Complete() {
		t.Errorf("disjoint=%v complete=%v", p.Disjoint(), p.Complete())
	}
	if p.Volume() != 6 {
		t.Errorf("volume = %d", p.Volume())
	}
	var total int64
	p.ColorSpace.Each(func(c domain.Point) bool {
		total += p.MustSubregion(c).Volume()
		return true
	})
	if total != 100 {
		t.Errorf("tiles cover %d cells", total)
	}
}

func TestPartitionHalo2DIsAliased(t *testing.T) {
	tree := grid2d(t, 12)
	halo, err := tree.PartitionHalo2D(tree.Root(), "halo", 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if halo.Disjoint() {
		t.Error("halo partition should be aliased")
	}
	if !halo.Complete() {
		t.Error("halo partition should be complete")
	}
	// Each halo tile should strictly contain the matching block tile.
	blocks, err := tree.PartitionBlock2D(tree.Root(), "blocks", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	blocks.ColorSpace.Each(func(c domain.Point) bool {
		b := blocks.MustSubregion(c)
		h := halo.MustSubregion(c)
		if h.Volume() <= b.Volume() {
			t.Errorf("halo tile %v (%d) not larger than block (%d)", c, h.Volume(), b.Volume())
		}
		if !h.Domain.Bounds().ContainsRect(b.Domain.Bounds()) {
			t.Errorf("halo tile %v does not contain block", c)
		}
		return true
	})
}

func TestPartitionByColoringEscapeRejected(t *testing.T) {
	tree := grid2d(t, 4)
	_, err := tree.PartitionByColoring(tree.Root(), "bad", domain.Range1(0, 0), Coloring{
		domain.Pt1(0): domain.FromRect(domain.Rect2(0, 0, 4, 4)), // escapes 0..3
	})
	if err == nil {
		t.Error("escaping coloring should error")
	}
}

func TestPartitionIncomplete(t *testing.T) {
	fs := MustFieldSpace(Field{ID: 0, Name: "v", Kind: F64})
	tree := MustNewTree("line", domain.Range1(0, 9), fs)
	p, err := tree.PartitionByColoring(tree.Root(), "partial", domain.Range1(0, 1), Coloring{
		domain.Pt1(0): domain.Range1(0, 2),
		domain.Pt1(1): domain.Range1(5, 6),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Disjoint() {
		t.Error("should be disjoint")
	}
	if p.Complete() {
		t.Error("should be incomplete")
	}
}

func TestPartitionMissingColorIsEmpty(t *testing.T) {
	fs := MustFieldSpace(Field{ID: 0, Name: "v", Kind: F64})
	tree := MustNewTree("line", domain.Range1(0, 9), fs)
	p, err := tree.PartitionByColoring(tree.Root(), "holey", domain.Range1(0, 2), Coloring{
		domain.Pt1(0): domain.Range1(0, 4),
		domain.Pt1(2): domain.Range1(5, 9),
	})
	if err != nil {
		t.Fatal(err)
	}
	sub := p.MustSubregion(domain.Pt1(1))
	if !sub.Domain.Empty() {
		t.Errorf("uncolored subregion should be empty, got %v", sub.Domain)
	}
	if !p.Disjoint() || !p.Complete() {
		t.Errorf("disjoint=%v complete=%v", p.Disjoint(), p.Complete())
	}
}

func TestPartitionBlock3D(t *testing.T) {
	fs := MustFieldSpace(Field{ID: 0, Name: "v", Kind: F64})
	tree := MustNewTree("cube", domain.FromRect(domain.Rect3(0, 0, 0, 5, 5, 5)), fs)
	p, err := tree.PartitionBlock3D(tree.Root(), "bricks", 2, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Disjoint() || !p.Complete() {
		t.Errorf("disjoint=%v complete=%v", p.Disjoint(), p.Complete())
	}
	if p.Volume() != 12 {
		t.Errorf("volume = %d", p.Volume())
	}
}

func TestRegionOverlaps(t *testing.T) {
	tree := grid2d(t, 8)
	blocks, _ := tree.PartitionBlock2D(tree.Root(), "b", 2, 2)
	halo, _ := tree.PartitionHalo2D(tree.Root(), "h", 2, 2, 1)
	b00 := blocks.MustSubregion(domain.Pt2(0, 0))
	b11 := blocks.MustSubregion(domain.Pt2(1, 1))
	h00 := halo.MustSubregion(domain.Pt2(0, 0))
	if b00.Overlaps(b11) {
		t.Error("disjoint blocks should not overlap")
	}
	if !h00.Overlaps(b11) {
		t.Error("halo(0,0) should overlap block(1,1) at the corner")
	}
	other := grid2d(t, 8)
	if b00.Overlaps(other.Root()) {
		t.Error("regions in different trees never overlap")
	}
}

func TestAccessorsSharedStorage(t *testing.T) {
	tree := grid2d(t, 4)
	blocks, _ := tree.PartitionBlock2D(tree.Root(), "b", 2, 2)
	sub := blocks.MustSubregion(domain.Pt2(0, 0))
	acc := MustFieldF64(sub, 0)
	acc.Set(domain.Pt2(1, 1), 42)
	rootAcc := MustFieldF64(tree.Root(), 0)
	if got := rootAcc.Get(domain.Pt2(1, 1)); got != 42 {
		t.Errorf("write through subregion not visible at root: %v", got)
	}
}

func TestAccessorKindMismatch(t *testing.T) {
	tree := grid2d(t, 2)
	if _, err := FieldF64(tree.Root(), 1); err == nil {
		t.Error("f64 accessor on i64 field should error")
	}
	if _, err := FieldI64(tree.Root(), 0); err == nil {
		t.Error("i64 accessor on f64 field should error")
	}
	if _, err := FieldF64(tree.Root(), 99); err == nil {
		t.Error("missing field should error")
	}
}

func TestFillAndSum(t *testing.T) {
	tree := grid2d(t, 4)
	if err := FillF64(tree.Root(), 0, 2.5); err != nil {
		t.Fatal(err)
	}
	s, err := SumF64(tree.Root(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if s != 40 {
		t.Errorf("sum = %v, want 40", s)
	}
	if err := FillI64(tree.Root(), 1, 3); err != nil {
		t.Fatal(err)
	}
	acc := MustFieldI64(tree.Root(), 1)
	if got := acc.Get(domain.Pt2(3, 3)); got != 3 {
		t.Errorf("i64 fill = %d", got)
	}
}

func TestDeterministicIDs(t *testing.T) {
	build := func() ([]PartitionID, []RegionID) {
		fs := MustFieldSpace(Field{ID: 0, Name: "v", Kind: F64})
		tree := MustNewTree("line", domain.Range1(0, 9), fs)
		p1, _ := tree.PartitionEqual(tree.Root(), "a", 2)
		p2, _ := tree.PartitionEqual(tree.Root(), "b", 5)
		var rids []RegionID
		p1.ColorSpace.Each(func(c domain.Point) bool {
			r := p1.MustSubregion(c)
			rids = append(rids, RegionID{Tree: 0, Index: r.ID.Index}) // normalize tree id
			return true
		})
		return []PartitionID{{Index: p1.ID.Index}, {Index: p2.ID.Index}}, rids
	}
	pa, ra := build()
	pb, rb := build()
	for i := range pa {
		if pa[i] != pb[i] {
			t.Errorf("partition ids differ between identical builds: %v vs %v", pa[i], pb[i])
		}
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Errorf("region ids differ between identical builds: %v vs %v", ra[i], rb[i])
		}
	}
}
