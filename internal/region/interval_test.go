package region

import (
	"testing"
	"testing/quick"

	"indexlaunch/internal/domain"
)

func TestIntervalsOfDense1D(t *testing.T) {
	root := domain.Rect1(0, 99)
	ivs := IntervalsOf(domain.Range1(10, 19), root)
	if len(ivs) != 1 || ivs[0] != (Interval{10, 19}) {
		t.Errorf("ivs = %v", ivs)
	}
}

func TestIntervalsOfDense2D(t *testing.T) {
	root := domain.Rect2(0, 0, 3, 9) // rows of length 10
	sub := domain.FromRect(domain.Rect2(1, 2, 2, 5))
	ivs := IntervalsOf(sub, root)
	want := []Interval{{12, 15}, {22, 25}}
	if len(ivs) != len(want) {
		t.Fatalf("ivs = %v, want %v", ivs, want)
	}
	for i := range want {
		if ivs[i] != want[i] {
			t.Errorf("ivs[%d] = %v, want %v", i, ivs[i], want[i])
		}
	}
}

func TestIntervalsOfFullWidthRowsMerge(t *testing.T) {
	root := domain.Rect2(0, 0, 3, 4)
	sub := domain.FromRect(domain.Rect2(1, 0, 2, 4)) // two full rows
	ivs := IntervalsOf(sub, root)
	if len(ivs) != 1 || ivs[0] != (Interval{5, 14}) {
		t.Errorf("full-width rows should merge: %v", ivs)
	}
}

func TestIntervalsOfSparse(t *testing.T) {
	root := domain.Rect1(0, 99)
	sub := domain.FromPoints([]domain.Point{
		domain.Pt1(5), domain.Pt1(6), domain.Pt1(7), domain.Pt1(20), domain.Pt1(22),
	})
	ivs := IntervalsOf(sub, root)
	want := []Interval{{5, 7}, {20, 20}, {22, 22}}
	if len(ivs) != len(want) {
		t.Fatalf("ivs = %v", ivs)
	}
	for i := range want {
		if ivs[i] != want[i] {
			t.Errorf("ivs[%d] = %v, want %v", i, ivs[i], want[i])
		}
	}
}

func TestIntervalsOf3D(t *testing.T) {
	root := domain.Rect3(0, 0, 0, 2, 2, 2)
	sub := domain.FromRect(domain.Rect3(0, 0, 0, 2, 2, 2))
	ivs := IntervalsOf(sub, root)
	if len(ivs) != 1 || ivs[0] != (Interval{0, 26}) {
		t.Errorf("whole cube should be one interval: %v", ivs)
	}
}

func TestIntervalsOfEmpty(t *testing.T) {
	if ivs := IntervalsOf(domain.FromPoints(nil), domain.Rect1(0, 9)); ivs != nil {
		t.Errorf("empty domain: %v", ivs)
	}
}

func TestIntervalsOverlap(t *testing.T) {
	a := []Interval{{0, 4}, {10, 14}}
	b := []Interval{{5, 9}, {15, 20}}
	c := []Interval{{14, 14}}
	if IntervalsOverlap(a, b) {
		t.Error("a and b should not overlap")
	}
	if !IntervalsOverlap(a, c) {
		t.Error("a and c should overlap at 14")
	}
	if IntervalsOverlap(nil, a) || IntervalsOverlap(a, nil) {
		t.Error("nil never overlaps")
	}
}

func TestIntervalsVolume(t *testing.T) {
	if v := IntervalsVolume([]Interval{{0, 4}, {10, 10}}); v != 6 {
		t.Errorf("volume = %d", v)
	}
	if v := IntervalsVolume(nil); v != 0 {
		t.Errorf("volume = %d", v)
	}
}

// Property: interval volume equals domain volume, and point membership in the
// domain matches index membership in the intervals.
func TestIntervalsOfVolumeProperty(t *testing.T) {
	f := func(lox, loy uint8, w, h uint8) bool {
		root := domain.Rect2(0, 0, 19, 19)
		sub := domain.Rect2(int64(lox%10), int64(loy%10),
			int64(lox%10)+int64(w%10), int64(loy%10)+int64(h%10))
		d := domain.FromRect(sub)
		ivs := IntervalsOf(d, root)
		return IntervalsVolume(ivs) == d.Volume()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: IntervalsOverlap agrees with Domain.Overlaps for 1-d domains.
func TestIntervalsOverlapAgreementProperty(t *testing.T) {
	f := func(a1, a2, b1, b2 uint8) bool {
		root := domain.Rect1(0, 511)
		da := domain.Range1(int64(a1), int64(a1)+int64(a2%16))
		db := domain.Range1(int64(b1), int64(b1)+int64(b2%16))
		ia := IntervalsOf(da, root)
		ib := IntervalsOf(db, root)
		return IntervalsOverlap(ia, ib) == da.Overlaps(db)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
