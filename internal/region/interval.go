package region

import (
	"sort"

	"indexlaunch/internal/domain"
)

// Interval is an inclusive range [Lo, Hi] of linearized root-domain indices.
// Subregions expose their point sets as sorted, non-overlapping interval
// lists; dependence analysis (the version map) operates on these intervals,
// which is the in-memory analog of the paper's bounding-volume hierarchy
// over sub-collections.
type Interval struct {
	Lo, Hi int64
}

// Len returns the number of indices covered by the interval.
func (iv Interval) Len() int64 { return iv.Hi - iv.Lo + 1 }

// Overlaps reports whether two intervals share an index.
func (iv Interval) Overlaps(o Interval) bool { return iv.Lo <= o.Hi && o.Lo <= iv.Hi }

// IntervalsOf computes the sorted, coalesced interval list of the points of d
// linearized within root (row-major). Every point of d must be contained in
// root.
func IntervalsOf(d domain.Domain, root domain.Rect) []Interval {
	if d.Empty() {
		return nil
	}
	// Dense fast path: each row of the sub-rectangle is one contiguous run.
	if !d.Sparse() {
		return rectIntervals(d.Bounds(), root)
	}
	idxs := make([]int64, 0, d.Volume())
	d.Each(func(p domain.Point) bool {
		idxs = append(idxs, root.Index(p))
		return true
	})
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	return coalesce(idxs)
}

func rectIntervals(r, root domain.Rect) []Interval {
	if r.Empty() {
		return nil
	}
	switch r.Dim() {
	case 1:
		return []Interval{{Lo: root.Index(r.Lo), Hi: root.Index(r.Hi)}}
	case 2:
		rowLen := r.Hi.C[1] - r.Lo.C[1] + 1
		out := make([]Interval, 0, r.Hi.C[0]-r.Lo.C[0]+1)
		for x := r.Lo.C[0]; x <= r.Hi.C[0]; x++ {
			lo := root.Index(domain.Pt2(x, r.Lo.C[1]))
			out = append(out, Interval{Lo: lo, Hi: lo + rowLen - 1})
		}
		return mergeAdjacent(out)
	default:
		rowLen := r.Hi.C[2] - r.Lo.C[2] + 1
		out := make([]Interval, 0, (r.Hi.C[0]-r.Lo.C[0]+1)*(r.Hi.C[1]-r.Lo.C[1]+1))
		for x := r.Lo.C[0]; x <= r.Hi.C[0]; x++ {
			for y := r.Lo.C[1]; y <= r.Hi.C[1]; y++ {
				lo := root.Index(domain.Pt3(x, y, r.Lo.C[2]))
				out = append(out, Interval{Lo: lo, Hi: lo + rowLen - 1})
			}
		}
		return mergeAdjacent(out)
	}
}

func coalesce(sorted []int64) []Interval {
	var out []Interval
	for _, idx := range sorted {
		if n := len(out); n > 0 && out[n-1].Hi+1 == idx {
			out[n-1].Hi = idx
		} else if n > 0 && out[n-1].Hi >= idx {
			continue // duplicate index
		} else {
			out = append(out, Interval{Lo: idx, Hi: idx})
		}
	}
	return out
}

// mergeAdjacent merges touching or overlapping intervals in a sorted list.
func mergeAdjacent(ivs []Interval) []Interval {
	if len(ivs) <= 1 {
		return ivs
	}
	out := ivs[:1]
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv.Lo <= last.Hi+1 {
			if iv.Hi > last.Hi {
				last.Hi = iv.Hi
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// IntervalsOverlap reports whether two sorted interval lists share an index.
func IntervalsOverlap(a, b []Interval) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].Overlaps(b[j]) {
			return true
		}
		if a[i].Hi < b[j].Hi {
			i++
		} else {
			j++
		}
	}
	return false
}

// IntervalsVolume returns the total number of indices covered by a sorted,
// non-overlapping interval list.
func IntervalsVolume(ivs []Interval) int64 {
	var v int64
	for _, iv := range ivs {
		v += iv.Len()
	}
	return v
}
