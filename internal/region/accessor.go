package region

import (
	"fmt"

	"indexlaunch/internal/domain"
	"indexlaunch/internal/privilege"
)

// AccF64 is a float64 field accessor bound to a region view. Get and Set
// address elements by index-space point; the underlying storage is the root
// collection's slab, so writes through one view are visible through every
// overlapping view (partitions are views, not copies).
type AccF64 struct {
	root domain.Rect
	data []float64
}

// AccI64 is the int64 analog of AccF64.
type AccI64 struct {
	root domain.Rect
	data []int64
}

// FieldF64 returns a float64 accessor for the field on the given region.
func FieldF64(r *Region, id FieldID) (AccF64, error) {
	f, ok := r.Tree.Fields.Lookup(id)
	if !ok {
		return AccF64{}, fmt.Errorf("region: tree %q has no field %d", r.Tree.Name, id)
	}
	if f.Kind != F64 {
		return AccF64{}, fmt.Errorf("region: field %q is %v, not float64", f.Name, f.Kind)
	}
	return AccF64{root: r.Tree.Domain.Bounds(), data: r.Tree.f64[id]}, nil
}

// FieldI64 returns an int64 accessor for the field on the given region.
func FieldI64(r *Region, id FieldID) (AccI64, error) {
	f, ok := r.Tree.Fields.Lookup(id)
	if !ok {
		return AccI64{}, fmt.Errorf("region: tree %q has no field %d", r.Tree.Name, id)
	}
	if f.Kind != I64 {
		return AccI64{}, fmt.Errorf("region: field %q is %v, not int64", f.Name, f.Kind)
	}
	return AccI64{root: r.Tree.Domain.Bounds(), data: r.Tree.i64[id]}, nil
}

// MustFieldF64 is FieldF64 that panics on error.
func MustFieldF64(r *Region, id FieldID) AccF64 {
	a, err := FieldF64(r, id)
	if err != nil {
		panic(err)
	}
	return a
}

// MustFieldI64 is FieldI64 that panics on error.
func MustFieldI64(r *Region, id FieldID) AccI64 {
	a, err := FieldI64(r, id)
	if err != nil {
		panic(err)
	}
	return a
}

// Get returns the element at point p.
func (a AccF64) Get(p domain.Point) float64 { return a.data[a.root.Index(p)] }

// Set stores v at point p.
func (a AccF64) Set(p domain.Point, v float64) { a.data[a.root.Index(p)] = v }

// Reduce folds v into the element at p using the given reduction operator.
func (a AccF64) Reduce(op privilege.ReductionOp, p domain.Point, v float64) {
	i := a.root.Index(p)
	a.data[i] = op.FoldF64(a.data[i], v)
}

// Get returns the element at point p.
func (a AccI64) Get(p domain.Point) int64 { return a.data[a.root.Index(p)] }

// Set stores v at point p.
func (a AccI64) Set(p domain.Point, v int64) { a.data[a.root.Index(p)] = v }

// Reduce folds v into the element at p using the given reduction operator.
func (a AccI64) Reduce(op privilege.ReductionOp, p domain.Point, v int64) {
	i := a.root.Index(p)
	a.data[i] = op.FoldI64(a.data[i], v)
}

// FillF64 sets every element of the region's field to v.
func FillF64(r *Region, id FieldID, v float64) error {
	acc, err := FieldF64(r, id)
	if err != nil {
		return err
	}
	r.Domain.Each(func(p domain.Point) bool {
		acc.Set(p, v)
		return true
	})
	return nil
}

// FillI64 sets every element of the region's field to v.
func FillI64(r *Region, id FieldID, v int64) error {
	acc, err := FieldI64(r, id)
	if err != nil {
		return err
	}
	r.Domain.Each(func(p domain.Point) bool {
		acc.Set(p, v)
		return true
	})
	return nil
}

// SumF64 returns the sum of the field over the region; a convenience used by
// tests and examples to validate results.
func SumF64(r *Region, id FieldID) (float64, error) {
	acc, err := FieldF64(r, id)
	if err != nil {
		return 0, err
	}
	var s float64
	r.Domain.Each(func(p domain.Point) bool {
		s += acc.Get(p)
		return true
	})
	return s, nil
}
