package region

import (
	"fmt"

	"indexlaunch/internal/domain"
)

// Checked accessors wrap the raw field accessors with a region-domain
// membership test on every access. Partitions are views onto shared root
// storage, so nothing in the raw accessor stops a buggy task from writing
// outside the subregion it declared — the classic hard-to-find bug in
// region-based programs. Checked accessors turn that bug into an immediate,
// descriptive panic; use them in tests and debug builds.

// CheckedAccF64 is a bounds-checked float64 accessor limited to one
// region's domain.
type CheckedAccF64 struct {
	acc    AccF64
	region *Region
}

// CheckedFieldF64 returns a bounds-checked accessor for the field on r.
func CheckedFieldF64(r *Region, id FieldID) (CheckedAccF64, error) {
	acc, err := FieldF64(r, id)
	if err != nil {
		return CheckedAccF64{}, err
	}
	return CheckedAccF64{acc: acc, region: r}, nil
}

func (a CheckedAccF64) check(p domain.Point, op string) {
	if !a.region.Domain.Contains(p) {
		panic(fmt.Sprintf("region: %s of %v outside region %s with domain %v",
			op, p, a.region, a.region.Domain))
	}
}

// Get returns the element at p, panicking if p is outside the region.
func (a CheckedAccF64) Get(p domain.Point) float64 {
	a.check(p, "read")
	return a.acc.Get(p)
}

// Set stores v at p, panicking if p is outside the region.
func (a CheckedAccF64) Set(p domain.Point, v float64) {
	a.check(p, "write")
	a.acc.Set(p, v)
}

// CheckedAccI64 is the int64 analog of CheckedAccF64.
type CheckedAccI64 struct {
	acc    AccI64
	region *Region
}

// CheckedFieldI64 returns a bounds-checked int64 accessor for the field on r.
func CheckedFieldI64(r *Region, id FieldID) (CheckedAccI64, error) {
	acc, err := FieldI64(r, id)
	if err != nil {
		return CheckedAccI64{}, err
	}
	return CheckedAccI64{acc: acc, region: r}, nil
}

func (a CheckedAccI64) check(p domain.Point, op string) {
	if !a.region.Domain.Contains(p) {
		panic(fmt.Sprintf("region: %s of %v outside region %s with domain %v",
			op, p, a.region, a.region.Domain))
	}
}

// Get returns the element at p, panicking if p is outside the region.
func (a CheckedAccI64) Get(p domain.Point) int64 {
	a.check(p, "read")
	return a.acc.Get(p)
}

// Set stores v at p, panicking if p is outside the region.
func (a CheckedAccI64) Set(p domain.Point, v int64) {
	a.check(p, "write")
	a.acc.Set(p, v)
}
