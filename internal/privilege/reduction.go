package privilege

import (
	"fmt"
	"math"
	"sync"
)

// OpID names a registered reduction operator. The zero value OpNone means
// "no operator" and is the correct value for non-Reduce privileges.
type OpID uint16

// Built-in reduction operator IDs.
const (
	OpNone OpID = iota
	OpSumF64
	OpProdF64
	OpMinF64
	OpMaxF64
	OpSumI64
	OpProdI64
	OpMinI64
	OpMaxI64
	// opFirstUser is the first ID handed out by RegisterOp.
	opFirstUser OpID = 1 << 8
)

// ReductionOp is a commutative, associative fold over values of a single
// field kind. Implementations must be safe for concurrent use (they are
// called from multiple executor goroutines folding into disjoint elements).
type ReductionOp interface {
	// Name returns a short diagnostic name such as "+f64".
	Name() string
	// IdentityF64 returns the identity element when folding float64 values.
	IdentityF64() float64
	// FoldF64 returns the fold of two float64 values.
	FoldF64(a, b float64) float64
	// IdentityI64 returns the identity element when folding int64 values.
	IdentityI64() int64
	// FoldI64 returns the fold of two int64 values.
	FoldI64(a, b int64) int64
}

type opEntry struct {
	name    string
	idF64   float64
	foldF64 func(a, b float64) float64
	idI64   int64
	foldI64 func(a, b int64) int64
}

func (e *opEntry) Name() string                 { return e.name }
func (e *opEntry) IdentityF64() float64         { return e.idF64 }
func (e *opEntry) FoldF64(a, b float64) float64 { return e.foldF64(a, b) }
func (e *opEntry) IdentityI64() int64           { return e.idI64 }
func (e *opEntry) FoldI64(a, b int64) int64     { return e.foldI64(a, b) }

var (
	opMu   sync.RWMutex
	ops    = map[OpID]ReductionOp{}
	nextID = opFirstUser
)

func init() {
	builtin := map[OpID]*opEntry{
		OpSumF64: {name: "+f64", idF64: 0,
			foldF64: func(a, b float64) float64 { return a + b },
			idI64:   0, foldI64: func(a, b int64) int64 { return a + b }},
		OpProdF64: {name: "*f64", idF64: 1,
			foldF64: func(a, b float64) float64 { return a * b },
			idI64:   1, foldI64: func(a, b int64) int64 { return a * b }},
		OpMinF64: {name: "min f64", idF64: math.Inf(1),
			foldF64: math.Min,
			idI64:   math.MaxInt64, foldI64: minI64},
		OpMaxF64: {name: "max f64", idF64: math.Inf(-1),
			foldF64: math.Max,
			idI64:   math.MinInt64, foldI64: maxI64},
		OpSumI64: {name: "+i64", idF64: 0,
			foldF64: func(a, b float64) float64 { return a + b },
			idI64:   0, foldI64: func(a, b int64) int64 { return a + b }},
		OpProdI64: {name: "*i64", idF64: 1,
			foldF64: func(a, b float64) float64 { return a * b },
			idI64:   1, foldI64: func(a, b int64) int64 { return a * b }},
		OpMinI64: {name: "min i64", idF64: math.Inf(1),
			foldF64: math.Min,
			idI64:   math.MaxInt64, foldI64: minI64},
		OpMaxI64: {name: "max i64", idF64: math.Inf(-1),
			foldF64: math.Max,
			idI64:   math.MinInt64, foldI64: maxI64},
	}
	for id, e := range builtin {
		ops[id] = e
	}
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// RegisterOp registers a user-defined reduction operator and returns its ID.
func RegisterOp(op ReductionOp) OpID {
	opMu.Lock()
	defer opMu.Unlock()
	id := nextID
	nextID++
	ops[id] = op
	return id
}

// LookupOp returns the reduction operator registered under id.
func LookupOp(id OpID) (ReductionOp, error) {
	opMu.RLock()
	defer opMu.RUnlock()
	op, ok := ops[id]
	if !ok {
		return nil, fmt.Errorf("privilege: unknown reduction op %d", id)
	}
	return op, nil
}

// MustOp is LookupOp for operators known to exist; it panics otherwise.
func MustOp(id OpID) ReductionOp {
	op, err := LookupOp(id)
	if err != nil {
		panic(err)
	}
	return op
}
