package privilege

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPrivilegePredicates(t *testing.T) {
	cases := []struct {
		p               Privilege
		isRead, isWrite bool
	}{
		{None, false, false},
		{Read, true, false},
		{Write, false, true},
		{ReadWrite, true, true},
		{Reduce, false, true}, // reductions count as writes for checks
	}
	for _, c := range cases {
		if got := c.p.IsRead(); got != c.isRead {
			t.Errorf("%v.IsRead = %v, want %v", c.p, got, c.isRead)
		}
		if got := c.p.IsWrite(); got != c.isWrite {
			t.Errorf("%v.IsWrite = %v, want %v", c.p, got, c.isWrite)
		}
		if !c.p.Valid() {
			t.Errorf("%v should be valid", c.p)
		}
	}
	if Privilege(99).Valid() {
		t.Error("privilege 99 should be invalid")
	}
}

func TestInterferes(t *testing.T) {
	cases := []struct {
		a    Privilege
		aOp  OpID
		b    Privilege
		bOp  OpID
		want bool
	}{
		{Read, OpNone, Read, OpNone, false},
		{Read, OpNone, Write, OpNone, true},
		{Write, OpNone, Read, OpNone, true},
		{Write, OpNone, Write, OpNone, true},
		{ReadWrite, OpNone, Read, OpNone, true},
		{Reduce, OpSumF64, Reduce, OpSumF64, false},
		{Reduce, OpSumF64, Reduce, OpProdF64, true},
		{Reduce, OpSumF64, Read, OpNone, true},
		{Reduce, OpSumF64, Write, OpNone, true},
		{None, OpNone, Write, OpNone, false},
		{Write, OpNone, None, OpNone, false},
	}
	for _, c := range cases {
		if got := Interferes(c.a, c.aOp, c.b, c.bOp); got != c.want {
			t.Errorf("Interferes(%v/%d, %v/%d) = %v, want %v", c.a, c.aOp, c.b, c.bOp, got, c.want)
		}
	}
}

// Property: interference is symmetric.
func TestInterferesSymmetryProperty(t *testing.T) {
	f := func(a, b uint8, aOp, bOp uint8) bool {
		pa := Privilege(a % 5)
		pb := Privilege(b % 5)
		oa := OpID(aOp % 3)
		ob := OpID(bOp % 3)
		return Interferes(pa, oa, pb, ob) == Interferes(pb, ob, pa, oa)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBuiltinReductionOps(t *testing.T) {
	cases := []struct {
		id      OpID
		a, b    float64
		wantF64 float64
		ai, bi  int64
		wantI64 int64
	}{
		{OpSumF64, 2, 3, 5, 2, 3, 5},
		{OpProdF64, 2, 3, 6, 2, 3, 6},
		{OpMinF64, 2, 3, 2, 2, 3, 2},
		{OpMaxF64, 2, 3, 3, 2, 3, 3},
		{OpSumI64, 2, 3, 5, 2, 3, 5},
		{OpMinI64, -1, 5, -1, -1, 5, -1},
	}
	for _, c := range cases {
		op := MustOp(c.id)
		if got := op.FoldF64(c.a, c.b); got != c.wantF64 {
			t.Errorf("%s FoldF64(%v,%v) = %v, want %v", op.Name(), c.a, c.b, got, c.wantF64)
		}
		if got := op.FoldI64(c.ai, c.bi); got != c.wantI64 {
			t.Errorf("%s FoldI64(%v,%v) = %v, want %v", op.Name(), c.ai, c.bi, got, c.wantI64)
		}
	}
}

func TestReductionIdentities(t *testing.T) {
	for _, id := range []OpID{OpSumF64, OpProdF64, OpMinF64, OpMaxF64, OpSumI64, OpProdI64, OpMinI64, OpMaxI64} {
		op := MustOp(id)
		for _, v := range []float64{0, 1, -3.5, math.Pi} {
			if got := op.FoldF64(op.IdentityF64(), v); got != v {
				t.Errorf("%s: fold(identity, %v) = %v", op.Name(), v, got)
			}
		}
		for _, v := range []int64{0, 1, -7, 1 << 40} {
			if got := op.FoldI64(op.IdentityI64(), v); got != v {
				t.Errorf("%s: foldI64(identity, %v) = %v", op.Name(), v, got)
			}
		}
	}
}

// Property: built-in folds are commutative.
func TestReductionCommutativityProperty(t *testing.T) {
	f := func(a, b int32, which uint8) bool {
		ids := []OpID{OpSumF64, OpMinF64, OpMaxF64, OpSumI64, OpMinI64, OpMaxI64}
		op := MustOp(ids[int(which)%len(ids)])
		fa, fb := float64(a), float64(b)
		if op.FoldF64(fa, fb) != op.FoldF64(fb, fa) {
			return false
		}
		return op.FoldI64(int64(a), int64(b)) == op.FoldI64(int64(b), int64(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegisterAndLookupOp(t *testing.T) {
	id := RegisterOp(&customXor{})
	op, err := LookupOp(id)
	if err != nil {
		t.Fatal(err)
	}
	if got := op.FoldI64(0b1100, 0b1010); got != 0b0110 {
		t.Errorf("xor fold = %b", got)
	}
	if _, err := LookupOp(OpID(9999)); err == nil {
		t.Error("unknown op should error")
	}
}

type customXor struct{}

func (customXor) Name() string                 { return "xor" }
func (customXor) IdentityF64() float64         { return 0 }
func (customXor) FoldF64(a, b float64) float64 { return float64(int64(a) ^ int64(b)) }
func (customXor) IdentityI64() int64           { return 0 }
func (customXor) FoldI64(a, b int64) int64     { return a ^ b }
