// Package privilege defines the access privileges tasks declare on their
// collection arguments (paper §2) and the interference predicate that drives
// both the index-launch safety checks and inter-launch dependence analysis.
package privilege

import "fmt"

// Privilege is the kind of access a task declares on a collection argument.
type Privilege uint8

const (
	// None declares no access; arguments with None never interfere.
	None Privilege = iota
	// Read declares read-only access.
	Read
	// Write declares write-only access.
	Write
	// ReadWrite declares mutable access.
	ReadWrite
	// Reduce declares application of a commutative reduction operator.
	// Two Reduce privileges with the same operator commute.
	Reduce
)

// String returns the privilege keyword as it appears in task declarations.
func (p Privilege) String() string {
	switch p {
	case None:
		return "none"
	case Read:
		return "reads"
	case Write:
		return "writes"
	case ReadWrite:
		return "reads writes"
	case Reduce:
		return "reduces"
	default:
		return fmt.Sprintf("privilege(%d)", uint8(p))
	}
}

// IsRead reports whether the privilege includes read access.
func (p Privilege) IsRead() bool { return p == Read || p == ReadWrite }

// IsWrite reports whether the privilege includes write access. Reductions
// are counted as writes for the purpose of safety checks, following §4 of
// the paper ("we consider reductions to be writes for the purposes of these
// checks").
func (p Privilege) IsWrite() bool { return p == Write || p == ReadWrite || p == Reduce }

// Valid reports whether p is one of the declared privilege constants.
func (p Privilege) Valid() bool { return p <= Reduce }

// Interferes reports whether two accesses to overlapping data with the given
// privileges (and reduction operator IDs, meaningful only when the privilege
// is Reduce) must be ordered. Read-read never interferes; reduce-reduce with
// the same operator commutes; every other combination involving a write
// interferes.
func Interferes(a Privilege, aOp OpID, b Privilege, bOp OpID) bool {
	if a == None || b == None {
		return false
	}
	if a == Read && b == Read {
		return false
	}
	if a == Reduce && b == Reduce {
		return aOp != bOp
	}
	return true
}
