package projection

import (
	"fmt"

	"indexlaunch/internal/domain"
)

// Verdict is the result of the static injectivity analysis.
type Verdict uint8

// Static analysis verdicts. Unknown defers the decision to the dynamic check
// (package safety) per the paper's hybrid design (§4).
const (
	// Injective: statically proven injective over the launch domain.
	Injective Verdict = iota
	// NotInjective: statically proven to collide over the launch domain.
	NotInjective
	// Unknown: the static analysis cannot decide; run the dynamic check.
	Unknown
)

// String returns the verdict name.
func (v Verdict) String() string {
	switch v {
	case Injective:
		return "injective"
	case NotInjective:
		return "not-injective"
	case Unknown:
		return "unknown"
	default:
		return fmt.Sprintf("verdict(%d)", uint8(v))
	}
}

// StaticInjective attempts to prove or refute the injectivity of f over the
// launch domain d at "compile time" (paper §4: "a simple static analysis
// that can recognize trivial projection functors like constant (not
// injective), identity (injective), or the slightly more general affine
// case").
//
// The analysis is deliberately conservative: anything it cannot resolve is
// Unknown, to be settled by the precise dynamic check.
func StaticInjective(f Functor, d domain.Domain) Verdict {
	if d.Volume() <= 1 {
		return Injective // at most one task; nothing can collide
	}
	desc := f.Describe()
	switch desc.Kind {
	case KindIdentity:
		return Injective
	case KindConstant:
		return NotInjective
	case KindAffine:
		return staticAffine(desc, d)
	case KindModular:
		return staticModular(desc, d)
	default:
		return Unknown
	}
}

func staticAffine(desc Desc, d domain.Domain) Verdict {
	if desc.OutDim < desc.InDim {
		// A dimension-reducing affine map may or may not be injective: a
		// plane projection collides over a dense cube, while a row-major
		// linearization (strides matching extents) is injective. Deciding
		// requires relating the matrix to the domain's extents, which we
		// leave to the precise dynamic check.
		return Unknown
	}
	// Square part: injective over all of Z^n iff det(A) != 0. We only check
	// the top InDim×InDim block when OutDim >= InDim; extra output rows can
	// only help injectivity, so det != 0 on any InDim×InDim row subset
	// proves it. For simplicity we test the leading block, then fall back
	// to Unknown (not NotInjective) if it is singular.
	det := detN(desc.A, desc.InDim)
	if det != 0 {
		return Injective
	}
	if desc.InDim == 1 && desc.OutDim == 1 {
		// Degenerate 1-d affine is a constant.
		return NotInjective
	}
	return Unknown
}

func staticModular(desc Desc, d domain.Domain) Verdict {
	// (a·i + b) mod m over a dense 1-d domain of volume v:
	// with |a| = 1 the map is injective iff v <= m; a cyclic shift cannot
	// collide within one period. Other strides require reasoning about
	// gcd(a, m) and are left to the dynamic check.
	if d.Sparse() || d.Dim() != 1 {
		return Unknown
	}
	v := d.Volume()
	if desc.MulA == 1 || desc.MulA == -1 {
		if v <= desc.Mod {
			return Injective
		}
		return NotInjective // pigeonhole: more points than residues
	}
	if desc.MulA == 0 {
		return NotInjective
	}
	if v > desc.Mod {
		return NotInjective // pigeonhole regardless of stride
	}
	return Unknown
}

// detN computes the determinant of the leading n×n block of a.
func detN(a [domain.MaxDim][domain.MaxDim]int64, n int) int64 {
	switch n {
	case 1:
		return a[0][0]
	case 2:
		return a[0][0]*a[1][1] - a[0][1]*a[1][0]
	case 3:
		return a[0][0]*(a[1][1]*a[2][2]-a[1][2]*a[2][1]) -
			a[0][1]*(a[1][0]*a[2][2]-a[1][2]*a[2][0]) +
			a[0][2]*(a[1][0]*a[2][1]-a[1][1]*a[2][0])
	default:
		panic(fmt.Sprintf("projection: detN with n=%d", n))
	}
}
