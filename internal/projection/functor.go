// Package projection implements projection functors: pure functions that map
// a task's index within a launch domain to the color of the sub-collection
// the task requires (paper §1, §3). The package also provides the static
// classifier used by the hybrid analysis — trivial functors (constant,
// identity, affine) are resolved at "compile time", everything else is
// deferred to the dynamic check in package safety.
package projection

import (
	"fmt"

	"indexlaunch/internal/domain"
)

// Kind classifies a functor for the static analysis.
type Kind uint8

// Functor kinds, ordered roughly by analyzability.
const (
	// KindConstant maps every launch point to one color.
	KindConstant Kind = iota
	// KindIdentity maps each launch point to itself.
	KindIdentity
	// KindAffine computes out = A·in + b over integer coordinates.
	KindAffine
	// KindModular computes (a·i + b) mod m in one dimension.
	KindModular
	// KindOpaque is any functor the static analysis cannot inspect.
	KindOpaque
)

// String returns the kind name used in diagnostics.
func (k Kind) String() string {
	switch k {
	case KindConstant:
		return "constant"
	case KindIdentity:
		return "identity"
	case KindAffine:
		return "affine"
	case KindModular:
		return "modular"
	case KindOpaque:
		return "opaque"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Desc is the static description of a functor. Only the fields relevant to
// the Kind are meaningful.
type Desc struct {
	Kind   Kind
	InDim  int
	OutDim int
	// Affine data: Out[i] = sum_j A[i][j]·In[j] + B[i]. Identity and
	// Constant are special cases but are described by their own kinds.
	A [domain.MaxDim][domain.MaxDim]int64
	B [domain.MaxDim]int64
	// Modular data (1-d): (MulA·i + MulB) mod Mod.
	MulA, MulB, Mod int64
}

// Functor maps launch-domain points to partition colors.
//
// Project must be a pure function: the runtime memoizes results and
// replicated (DCR) shards must evaluate it to identical values.
type Functor interface {
	// Project returns the color selected for launch point p.
	Project(p domain.Point) domain.Point
	// Describe returns the static description used by the classifier.
	Describe() Desc
	// Name returns a short diagnostic name.
	Name() string
}

// Identity returns the identity functor for dim-dimensional launch domains.
func Identity(dim int) Functor { return identity{dim: dim} }

type identity struct{ dim int }

func (f identity) Project(p domain.Point) domain.Point { return p }
func (f identity) Name() string                        { return "identity" }
func (f identity) Describe() Desc {
	return Desc{Kind: KindIdentity, InDim: f.dim, OutDim: f.dim}
}

// Constant returns the functor mapping every launch point to c.
func Constant(c domain.Point) Functor { return constant{c: c} }

type constant struct{ c domain.Point }

func (f constant) Project(domain.Point) domain.Point { return f.c }
func (f constant) Name() string                      { return fmt.Sprintf("const %v", f.c) }
func (f constant) Describe() Desc {
	return Desc{Kind: KindConstant, InDim: f.c.Dim, OutDim: f.c.Dim}
}

// Affine1D returns the 1-d functor i -> a·i + b.
func Affine1D(a, b int64) Functor { return affine1d{a: a, b: b} }

type affine1d struct{ a, b int64 }

func (f affine1d) Project(p domain.Point) domain.Point {
	return domain.Pt1(f.a*p.X() + f.b)
}
func (f affine1d) Name() string { return fmt.Sprintf("%d*i%+d", f.a, f.b) }
func (f affine1d) Describe() Desc {
	d := Desc{Kind: KindAffine, InDim: 1, OutDim: 1}
	d.A[0][0] = f.a
	d.B[0] = f.b
	return d
}

// Affine returns the general functor out = A·in + b where A is outDim×inDim.
func Affine(a [domain.MaxDim][domain.MaxDim]int64, b [domain.MaxDim]int64, inDim, outDim int) Functor {
	if inDim < 1 || inDim > domain.MaxDim || outDim < 1 || outDim > domain.MaxDim {
		panic(fmt.Sprintf("projection: Affine with inDim=%d outDim=%d", inDim, outDim))
	}
	return affineND{a: a, b: b, in: inDim, out: outDim}
}

type affineND struct {
	a   [domain.MaxDim][domain.MaxDim]int64
	b   [domain.MaxDim]int64
	in  int
	out int
}

func (f affineND) Project(p domain.Point) domain.Point {
	out := domain.Point{Dim: f.out}
	for i := 0; i < f.out; i++ {
		v := f.b[i]
		for j := 0; j < f.in; j++ {
			v += f.a[i][j] * p.C[j]
		}
		out.C[i] = v
	}
	return out
}
func (f affineND) Name() string { return fmt.Sprintf("affine %dd->%dd", f.in, f.out) }
func (f affineND) Describe() Desc {
	return Desc{Kind: KindAffine, InDim: f.in, OutDim: f.out, A: f.a, B: f.b}
}

// Modular1D returns the 1-d functor i -> (a·i + b) mod m, with a canonical
// non-negative result. It panics if m <= 0.
func Modular1D(a, b, m int64) Functor {
	if m <= 0 {
		panic(fmt.Sprintf("projection: Modular1D with modulus %d", m))
	}
	return modular1d{a: a, b: b, m: m}
}

type modular1d struct{ a, b, m int64 }

func (f modular1d) Project(p domain.Point) domain.Point {
	v := (f.a*p.X() + f.b) % f.m
	if v < 0 {
		v += f.m
	}
	return domain.Pt1(v)
}
func (f modular1d) Name() string { return fmt.Sprintf("(%d*i%+d) mod %d", f.a, f.b, f.m) }
func (f modular1d) Describe() Desc {
	return Desc{Kind: KindModular, InDim: 1, OutDim: 1, MulA: f.a, MulB: f.b, Mod: f.m}
}

// Quadratic1D returns the 1-d functor i -> a·i² + b·i + c. It is opaque to
// the static analysis (the paper benchmarks it as a dynamic-check case).
func Quadratic1D(a, b, c int64) Functor { return quadratic1d{a: a, b: b, c: c} }

type quadratic1d struct{ a, b, c int64 }

func (f quadratic1d) Project(p domain.Point) domain.Point {
	x := p.X()
	return domain.Pt1(f.a*x*x + f.b*x + f.c)
}
func (f quadratic1d) Name() string { return fmt.Sprintf("%d*i^2%+d*i%+d", f.a, f.b, f.c) }
func (f quadratic1d) Describe() Desc {
	return Desc{Kind: KindOpaque, InDim: 1, OutDim: 1}
}

// Func wraps an arbitrary Go function as an opaque functor; the hybrid
// analysis will fall back to the dynamic check for it.
func Func(name string, inDim, outDim int, fn func(domain.Point) domain.Point) Functor {
	return opaque{name: name, in: inDim, out: outDim, fn: fn}
}

type opaque struct {
	name    string
	in, out int
	fn      func(domain.Point) domain.Point
}

func (f opaque) Project(p domain.Point) domain.Point { return f.fn(p) }
func (f opaque) Name() string                        { return f.name }
func (f opaque) Describe() Desc {
	return Desc{Kind: KindOpaque, InDim: f.in, OutDim: f.out}
}

// Plane selects which coordinate a DropTo2D projection discards.
type Plane uint8

// Planes for DropTo2D, named by the coordinates they keep.
const (
	PlaneXY Plane = iota // keep (x, y), drop z
	PlaneYZ              // keep (y, z), drop x
	PlaneXZ              // keep (x, z), drop y
)

// DropTo2D returns the 3-d → 2-d projection keeping the named plane. This is
// the non-trivial functor class used by the DOM radiation sweeps in Soleil-X
// (paper §6.2.3): it projects a 3-d diagonal slice onto the 2-d plane used
// for the exchange data, and is injective only when the launch domain
// contains no duplicate pairs in the kept coordinates — a property a static
// compiler cannot easily verify but the dynamic check verifies trivially.
func DropTo2D(plane Plane) Functor {
	var a [domain.MaxDim][domain.MaxDim]int64
	switch plane {
	case PlaneXY:
		a[0][0], a[1][1] = 1, 1
	case PlaneYZ:
		a[0][1], a[1][2] = 1, 1
	case PlaneXZ:
		a[0][0], a[1][2] = 1, 1
	default:
		panic(fmt.Sprintf("projection: unknown plane %d", plane))
	}
	return affineND{a: a, in: 3, out: 2}
}

// Compose returns g ∘ f (f applied first). The composition is opaque unless
// both parts are affine, in which case the composed affine description is
// computed so the static analysis can still resolve it.
func Compose(g, f Functor) Functor {
	gd, fd := g.Describe(), f.Describe()
	if gd.Kind == KindAffine && fd.Kind == KindAffine && fd.OutDim == gd.InDim {
		var a [domain.MaxDim][domain.MaxDim]int64
		var b [domain.MaxDim]int64
		for i := 0; i < gd.OutDim; i++ {
			b[i] = gd.B[i]
			for j := 0; j < gd.InDim; j++ {
				b[i] += gd.A[i][j] * fd.B[j]
				for k := 0; k < fd.InDim; k++ {
					a[i][k] += gd.A[i][j] * fd.A[j][k]
				}
			}
		}
		return affineND{a: a, b: b, in: fd.InDim, out: gd.OutDim}
	}
	return opaque{
		name: fmt.Sprintf("%s∘%s", g.Name(), f.Name()),
		in:   fd.InDim,
		out:  gd.OutDim,
		fn:   func(p domain.Point) domain.Point { return g.Project(f.Project(p)) },
	}
}
