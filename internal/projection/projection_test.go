package projection

import (
	"testing"
	"testing/quick"

	"indexlaunch/internal/domain"
)

func TestIdentityFunctor(t *testing.T) {
	f := Identity(2)
	p := domain.Pt2(3, 4)
	if got := f.Project(p); !got.Eq(p) {
		t.Errorf("identity(%v) = %v", p, got)
	}
	if f.Describe().Kind != KindIdentity {
		t.Error("kind should be identity")
	}
}

func TestConstantFunctor(t *testing.T) {
	c := domain.Pt1(7)
	f := Constant(c)
	for _, x := range []int64{0, 1, 100} {
		if got := f.Project(domain.Pt1(x)); !got.Eq(c) {
			t.Errorf("const(%d) = %v", x, got)
		}
	}
	if f.Describe().Kind != KindConstant {
		t.Error("kind should be constant")
	}
}

func TestAffine1D(t *testing.T) {
	f := Affine1D(3, -2)
	if got := f.Project(domain.Pt1(5)); !got.Eq(domain.Pt1(13)) {
		t.Errorf("affine(5) = %v", got)
	}
	d := f.Describe()
	if d.Kind != KindAffine || d.A[0][0] != 3 || d.B[0] != -2 {
		t.Errorf("describe = %+v", d)
	}
}

func TestModular1D(t *testing.T) {
	f := Modular1D(1, 2, 5) // (i+2) mod 5
	cases := map[int64]int64{0: 2, 3: 0, 4: 1, 8: 0, -1: 1}
	for in, want := range cases {
		if got := f.Project(domain.Pt1(in)); got.X() != want {
			t.Errorf("mod(%d) = %d, want %d", in, got.X(), want)
		}
	}
}

func TestModular1DPanicsOnBadModulus(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("modulus 0 should panic")
		}
	}()
	Modular1D(1, 0, 0)
}

func TestQuadratic1D(t *testing.T) {
	f := Quadratic1D(1, 1, 1) // i^2+i+1
	if got := f.Project(domain.Pt1(3)); got.X() != 13 {
		t.Errorf("quad(3) = %d", got.X())
	}
	if f.Describe().Kind != KindOpaque {
		t.Error("quadratic should be opaque to static analysis")
	}
}

func TestDropTo2D(t *testing.T) {
	p := domain.Pt3(1, 2, 3)
	cases := []struct {
		plane Plane
		want  domain.Point
	}{
		{PlaneXY, domain.Pt2(1, 2)},
		{PlaneYZ, domain.Pt2(2, 3)},
		{PlaneXZ, domain.Pt2(1, 3)},
	}
	for _, c := range cases {
		if got := DropTo2D(c.plane).Project(p); !got.Eq(c.want) {
			t.Errorf("plane %d: %v, want %v", c.plane, got, c.want)
		}
	}
}

func TestComposeAffineStaysAffine(t *testing.T) {
	f := Affine1D(2, 1)  // 2i+1
	g := Affine1D(3, -1) // 3j-1
	h := Compose(g, f)   // 3(2i+1)-1 = 6i+2
	if got := h.Project(domain.Pt1(4)); got.X() != 26 {
		t.Errorf("compose(4) = %d, want 26", got.X())
	}
	d := h.Describe()
	if d.Kind != KindAffine || d.A[0][0] != 6 || d.B[0] != 2 {
		t.Errorf("composed describe = %+v", d)
	}
}

func TestComposeOpaqueFallback(t *testing.T) {
	f := Quadratic1D(1, 0, 0)
	g := Affine1D(2, 0)
	h := Compose(g, f) // 2i^2
	if got := h.Project(domain.Pt1(3)); got.X() != 18 {
		t.Errorf("compose(3) = %d", got.X())
	}
	if h.Describe().Kind != KindOpaque {
		t.Error("composition through opaque should be opaque")
	}
}

func TestFuncFunctor(t *testing.T) {
	f := Func("swap", 2, 2, func(p domain.Point) domain.Point {
		return domain.Pt2(p.Y(), p.X())
	})
	if got := f.Project(domain.Pt2(1, 2)); !got.Eq(domain.Pt2(2, 1)) {
		t.Errorf("swap = %v", got)
	}
	if f.Describe().Kind != KindOpaque {
		t.Error("Func should be opaque")
	}
	if f.Name() != "swap" {
		t.Errorf("name = %q", f.Name())
	}
}

func TestStaticInjectiveTrivialCases(t *testing.T) {
	d := domain.Range1(0, 9)
	cases := []struct {
		name string
		f    Functor
		want Verdict
	}{
		{"identity", Identity(1), Injective},
		{"constant", Constant(domain.Pt1(3)), NotInjective},
		{"affine nonzero", Affine1D(2, 5), Injective},
		{"affine degenerate", Affine1D(0, 5), NotInjective},
		{"quadratic", Quadratic1D(1, 0, 0), Unknown},
		{"opaque", Func("f", 1, 1, func(p domain.Point) domain.Point { return p }), Unknown},
	}
	for _, c := range cases {
		if got := StaticInjective(c.f, d); got != c.want {
			t.Errorf("%s: verdict = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestStaticInjectiveSingletonDomain(t *testing.T) {
	d := domain.Range1(5, 5)
	// Even a constant functor is injective over a single point.
	if got := StaticInjective(Constant(domain.Pt1(0)), d); got != Injective {
		t.Errorf("singleton: %v", got)
	}
}

func TestStaticInjectiveModular(t *testing.T) {
	cases := []struct {
		f    Functor
		d    domain.Domain
		want Verdict
	}{
		// (i+k) mod N over [0,N) is injective — the paper's Table 2 case.
		{Modular1D(1, 3, 10), domain.Range1(0, 9), Injective},
		// i%3 over [0,5) is the paper's Listing 2 counterexample.
		{Modular1D(1, 0, 3), domain.Range1(0, 4), NotInjective},
		// stride 2 within period: left to the dynamic check.
		{Modular1D(2, 0, 10), domain.Range1(0, 4), Unknown},
		// stride 2, more points than residues: pigeonhole.
		{Modular1D(2, 0, 4), domain.Range1(0, 9), NotInjective},
		{Modular1D(0, 1, 5), domain.Range1(0, 4), NotInjective},
	}
	for i, c := range cases {
		if got := StaticInjective(c.f, c.d); got != c.want {
			t.Errorf("case %d (%s over %v): %v, want %v", i, c.f.Name(), c.d, got, c.want)
		}
	}
}

func TestStaticInjectiveAffineND(t *testing.T) {
	// Rotation-like integer map (x,y) -> (y, x): det = -1, injective.
	var a [domain.MaxDim][domain.MaxDim]int64
	a[0][1], a[1][0] = 1, 1
	f := Affine(a, [domain.MaxDim]int64{}, 2, 2)
	d2 := domain.FromRect(domain.Rect2(0, 0, 3, 3))
	if got := StaticInjective(f, d2); got != Injective {
		t.Errorf("swap: %v", got)
	}
	// Singular 2-d map (x,y) -> (x+y, x+y).
	var s [domain.MaxDim][domain.MaxDim]int64
	s[0][0], s[0][1], s[1][0], s[1][1] = 1, 1, 1, 1
	g := Affine(s, [domain.MaxDim]int64{}, 2, 2)
	if got := StaticInjective(g, d2); got != Unknown {
		t.Errorf("singular: %v (static cannot refute over arbitrary domains)", got)
	}
}

func TestStaticInjectiveDimensionReducing(t *testing.T) {
	f := DropTo2D(PlaneXY)
	// A plane drop over a dense cube is in fact non-injective, but a
	// dimension-reducing matrix can also be a (injective) linearization,
	// so the static verdict must stay Unknown and defer to the dynamic
	// check.
	dense := domain.FromRect(domain.Rect3(0, 0, 0, 2, 2, 2))
	if got := StaticInjective(f, dense); got != Unknown {
		t.Errorf("dense cube through plane drop: %v, want unknown", got)
	}
	// Diagonal slices have no duplicate (x,y) pairs, but only the dynamic
	// check can see that.
	diag := domain.DiagonalSlice3(domain.Rect3(0, 0, 0, 2, 2, 2), 3)
	if got := StaticInjective(f, diag); got != Unknown {
		t.Errorf("diagonal slice: %v, want unknown", got)
	}
}

// Property: static Injective verdicts are never wrong — brute-force agree.
func TestStaticInjectiveSoundnessProperty(t *testing.T) {
	f := func(a int8, b int8, m uint8, span uint8) bool {
		mod := int64(m%20) + 1
		fn := Modular1D(int64(a%5), int64(b), mod)
		d := domain.Range1(0, int64(span%30))
		verdict := StaticInjective(fn, d)
		actual := bruteForceInjective(fn, d)
		switch verdict {
		case Injective:
			return actual
		case NotInjective:
			return !actual
		default:
			return true // Unknown is always sound
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func bruteForceInjective(f Functor, d domain.Domain) bool {
	seen := map[domain.Point]bool{}
	ok := true
	d.Each(func(p domain.Point) bool {
		v := f.Project(p)
		if seen[v] {
			ok = false
			return false
		}
		seen[v] = true
		return true
	})
	return ok
}

// Property: affine 1-d static verdicts agree with brute force.
func TestStaticAffineSoundnessProperty(t *testing.T) {
	f := func(a int8, b int8, span uint8) bool {
		fn := Affine1D(int64(a), int64(b))
		d := domain.Range1(0, int64(span%40))
		verdict := StaticInjective(fn, d)
		actual := bruteForceInjective(fn, d)
		switch verdict {
		case Injective:
			return actual
		case NotInjective:
			return !actual
		default:
			return true
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
