package repro

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun builds and runs every example binary end to end, checking
// for the key line each should print. Skipped with -short.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are integration tests; skipped with -short")
	}
	cases := []struct {
		path string
		want string
	}{
		{"./examples/quickstart", "sum of all task results: 49500000"},
		{"./examples/circuit", "max divergence"},
		{"./examples/stencil", "9 replays"},
		{"./examples/soleil", "0 fallbacks"},
		{"./examples/compilerdemo", "index launch (static)"},
		{"./examples/faulttol", "degraded-mode completion: sum=300000 (want 300000)"},
	}
	for _, c := range cases {
		c := c
		t.Run(strings.TrimPrefix(c.path, "./examples/"), func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", c.path).CombinedOutput()
			if err != nil {
				t.Fatalf("go run %s: %v\n%s", c.path, err, out)
			}
			if !strings.Contains(string(out), c.want) {
				t.Errorf("%s output missing %q:\n%s", c.path, c.want, out)
			}
		})
	}
}

// TestCLIsRun smoke-tests the command-line tools.
func TestCLIsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration tests; skipped with -short")
	}
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"idxbench-table2", []string{"run", "./cmd/idxbench", "-table", "2"}, "Identity i"},
		{"idxbench-fig10", []string{"run", "./cmd/idxbench", "-fig", "10", "-iters", "3"}, "DCR, IDX (dynamic check)"},
		{"idxlang-demo", []string{"run", "./cmd/idxlang", "-demo", "-run"}, "index launches"},
		{"idxsim", []string{"run", "./cmd/idxsim", "-app", "stencil", "-nodes", "16", "-iters", "3"}, "throughput"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", c.args...).CombinedOutput()
			if err != nil {
				t.Fatalf("go %v: %v\n%s", c.args, err, out)
			}
			if !strings.Contains(string(out), c.want) {
				t.Errorf("%v output missing %q:\n%s", c.args, c.want, out)
			}
		})
	}
}
