package repro

import (
	"os"
	"os/exec"
	"strings"
	"testing"
)

// exampleCases maps every runnable example to the key line it should print;
// TestExamplesCovered fails when a directory under examples/ is missing
// here, so new examples cannot silently rot.
var exampleCases = []struct {
	path string
	want string
}{
	{"./examples/quickstart", "sum of all task results: 49500000"},
	{"./examples/circuit", "max divergence"},
	{"./examples/stencil", "9 replays"},
	{"./examples/soleil", "0 fallbacks"},
	{"./examples/compilerdemo", "index launch (static)"},
	{"./examples/faulttol", "degraded-mode completion: sum=300000 (want 300000)"},
	{"./examples/chaos", "chaos-mode completion: sum=640 (want 640)"},
	{"./examples/selfheal", "self-heal completion: sum=960 (want 960)"},
	{"./examples/cluster", "cluster completion: sum=8555 (want 8555) over 3 TCP nodes"},
	{"./examples/profiling", "critical path:"},
	{"./examples/metrics", "stage-latency histogram"},
	{"./examples/serve", "fair-share outcome"},
}

// TestExamplesRun builds and runs every example binary end to end, checking
// for the key line each should print. Skipped with -short.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are integration tests; skipped with -short")
	}
	for _, c := range exampleCases {
		c := c
		t.Run(strings.TrimPrefix(c.path, "./examples/"), func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", c.path).CombinedOutput()
			if err != nil {
				t.Fatalf("go run %s: %v\n%s", c.path, err, out)
			}
			if !strings.Contains(string(out), c.want) {
				t.Errorf("%s output missing %q:\n%s", c.path, c.want, out)
			}
		})
	}
}

// TestExamplesCovered verifies every directory under examples/ has a case
// in exampleCases (and that no case points at a deleted example).
func TestExamplesCovered(t *testing.T) {
	covered := map[string]bool{}
	for _, c := range exampleCases {
		covered[strings.TrimPrefix(c.path, "./examples/")] = true
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	onDisk := map[string]bool{}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		onDisk[e.Name()] = true
		if !covered[e.Name()] {
			t.Errorf("examples/%s has no case in exampleCases; add a smoke test", e.Name())
		}
	}
	for name := range covered {
		if !onDisk[name] {
			t.Errorf("exampleCases lists ./examples/%s which does not exist", name)
		}
	}
}

// TestProfilePipeline exercises the profiling path end to end: idxbench
// dumps a Chrome trace of one figure's representative run, and idxprof
// loads it back and prints timelines, aggregates, and a critical path.
func TestProfilePipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration tests; skipped with -short")
	}
	trace := t.TempDir() + "/p.json"
	out, err := exec.Command("go", "run", "./cmd/idxbench",
		"-fig", "5", "-max-nodes", "8", "-iters", "3", "-profile", trace).CombinedOutput()
	if err != nil {
		t.Fatalf("idxbench -profile: %v\n%s", err, out)
	}
	out, err = exec.Command("go", "run", "./cmd/idxprof", trace).CombinedOutput()
	if err != nil {
		t.Fatalf("idxprof: %v\n%s", err, out)
	}
	for _, want := range []string{"per-stage totals", "per-launch totals", "node timelines", "critical path:", "100.0%"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("idxprof output missing %q:\n%s", want, out)
		}
	}
}

// TestBenchDiffPipeline exercises the bench-regression gate end to end: two
// idxbench runs of the same figure write BENCH_fig5.json snapshots, and
// idxprof diff compares them. The simulator is deterministic, so the second
// run must show no movement and the gate must pass.
func TestBenchDiffPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration tests; skipped with -short")
	}
	dir := t.TempDir()
	for _, sub := range []string{"a", "b"} {
		out, err := exec.Command("go", "run", "./cmd/idxbench",
			"-fig", "5", "-max-nodes", "8", "-iters", "3", "-json", dir+"/"+sub).CombinedOutput()
		if err != nil {
			t.Fatalf("idxbench -json: %v\n%s", err, out)
		}
		if !strings.Contains(string(out), "BENCH_fig5.json") {
			t.Fatalf("idxbench did not report the snapshot path:\n%s", out)
		}
	}
	out, err := exec.Command("go", "run", "./cmd/idxprof", "diff",
		dir+"/a/BENCH_fig5.json", dir+"/b/BENCH_fig5.json").CombinedOutput()
	if err != nil {
		t.Fatalf("idxprof diff flagged identical runs: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "no values moved beyond the threshold") {
		t.Errorf("diff output missing clean verdict:\n%s", out)
	}
}

// TestCLIsRun smoke-tests the command-line tools.
func TestCLIsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration tests; skipped with -short")
	}
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"idxbench-table2", []string{"run", "./cmd/idxbench", "-table", "2"}, "Identity i"},
		{"idxbench-fig10", []string{"run", "./cmd/idxbench", "-fig", "10", "-iters", "3"}, "DCR, IDX (dynamic check)"},
		{"idxlang-demo", []string{"run", "./cmd/idxlang", "-demo", "-run"}, "index launches"},
		{"idxsim", []string{"run", "./cmd/idxsim", "-app", "stencil", "-nodes", "16", "-iters", "3"}, "throughput"},
		{"idxsim-metrics", []string{"run", "./cmd/idxsim", "-app", "stencil", "-nodes", "8", "-iters", "3",
			"-metrics", "127.0.0.1:0"}, "idx_tasks_executed_total"},
		{"idxserve-trace", []string{"run", "./cmd/idxserve", "-trace", "-seed", "42", "-jobs", "60",
			"-queue", "fair", "-weights", "a=1,b=2,c=4"}, "# seed 42:"},
		{"idxserve-bench", []string{"run", "./cmd/idxserve", "-bench"}, "sched/fair/seed42"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", c.args...).CombinedOutput()
			if err != nil {
				t.Fatalf("go %v: %v\n%s", c.args, err, out)
			}
			if !strings.Contains(string(out), c.want) {
				t.Errorf("%v output missing %q:\n%s", c.args, c.want, out)
			}
		})
	}
}
